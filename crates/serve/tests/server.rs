//! End-to-end server tests over real sockets: session-cache identity
//! properties (every hit class answers byte-identically to a cold
//! solve; eviction never changes results), admission-control overload
//! behaviour, and request validation.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_core::{
    comparesets_plus_objective, solve_comparesets_plus_sweeps_with, InstanceContext, OpinionScheme,
    SelectParams, SolveOptions, SolverMetrics,
};
use comparesets_data::{CategoryPreset, ComparisonInstance, Dataset, ProductId};
use comparesets_serve::{Client, ItemSelection, Request, Response, Server, ServerConfig, Status};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn corpus() -> Dataset {
    CategoryPreset::Toy.config(60, 13).generate()
}

/// Item sets (product ids, target first) taken from the corpus's own
/// comparison instances, truncated to keep solves fast.
fn item_sets(dataset: &Dataset) -> Vec<Vec<u32>> {
    dataset
        .instances()
        .into_iter()
        .take(4)
        .map(|inst| {
            inst.truncated(3)
                .items
                .iter()
                .map(|p| p.0)
                .collect::<Vec<u32>>()
        })
        .collect()
}

fn spawn(
    dataset: Dataset,
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<comparesets_serve::ServeSummary>,
    Arc<SolverMetrics>,
) {
    let metrics = Arc::new(SolverMetrics::new());
    let server = Server::bind(
        "127.0.0.1:0",
        vec![("main".to_string(), dataset)],
        Arc::clone(&metrics),
        config,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle, metrics)
}

/// The reference answer: a cold in-process solve, rendered to the wire
/// shape exactly as the server renders it.
fn cold_reference(
    dataset: &Dataset,
    items: &[u32],
    params: &SelectParams,
    sweeps: usize,
) -> (Vec<ItemSelection>, f64) {
    let instance = ComparisonInstance {
        items: items.iter().map(|&id| ProductId(id)).collect(),
    };
    let ctx = InstanceContext::build(dataset, &instance, OpinionScheme::Binary);
    let selections =
        solve_comparesets_plus_sweeps_with(&ctx, params, sweeps, &SolveOptions::default());
    let objective = comparesets_plus_objective(&ctx, &selections, params.lambda, params.mu);
    let wire = selections
        .iter()
        .enumerate()
        .map(|(i, sel)| {
            let item = ctx.item(i);
            ItemSelection {
                product: item.product.0,
                indices: sel.indices.clone(),
                review_ids: sel.review_ids(item).iter().map(|r| r.0).collect(),
            }
        })
        .collect();
    (wire, objective)
}

fn assert_matches_reference(response: &Response, reference: &(Vec<ItemSelection>, f64)) {
    assert_eq!(response.status, Status::Ok, "{response:?}");
    assert_eq!(response.selections, reference.0, "selections diverged");
    assert_eq!(
        response.objective.map(f64::to_bits),
        Some(reference.1.to_bits()),
        "objective diverged"
    );
}

#[test]
fn every_hit_class_answers_byte_identically_to_a_cold_solve() {
    let dataset = corpus();
    let items = item_sets(&dataset).remove(0);
    let (addr, handle, metrics) = spawn(dataset.clone(), ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    let params = SelectParams::default();

    // Cold miss.
    let request = Request::solve_items(items.clone());
    let cold = client.call(&request).unwrap();
    assert_eq!(cold.cache.as_deref(), Some("cold"));
    assert_matches_reference(&cold, &cold_reference(&dataset, &items, &params, 1));

    // Full hit: exact repeat.
    let full = client.call(&request).unwrap();
    assert_eq!(full.cache.as_deref(), Some("full"));
    assert_matches_reference(&full, &cold_reference(&dataset, &items, &params, 1));

    // Warm hit: same shape, deeper sweeps — reuses checked-out warm
    // states, still byte-identical to a cold 3-sweep solve.
    let deeper = Request {
        sweeps: Some(3),
        ..request.clone()
    };
    let warm = client.call(&deeper).unwrap();
    assert_eq!(warm.cache.as_deref(), Some("warm"));
    assert_matches_reference(&warm, &cold_reference(&dataset, &items, &params, 3));

    // Warm hit with a λ tweak — near-repeat, same guarantee.
    let tweaked_params = SelectParams {
        lambda: 0.5,
        ..params
    };
    let tweaked = Request {
        lambda: Some(0.5),
        ..request.clone()
    };
    let warm2 = client.call(&tweaked).unwrap();
    assert_eq!(warm2.cache.as_deref(), Some("warm"));
    assert_matches_reference(
        &warm2,
        &cold_reference(&dataset, &items, &tweaked_params, 1),
    );

    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.serve_requests, 4);
    assert_eq!(snapshot.serve_full_hits, 1);
    assert_eq!(snapshot.serve_warm_hits, 2);
    assert_eq!(snapshot.serve_cache_misses, 1);

    // Close the querying connection before shutdown: the server joins its
    // handler threads, which serve until their client hangs up.
    drop(client);
    Client::connect(addr).unwrap().shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 5);
    assert_eq!(summary.degraded, 0);
}

#[test]
fn eviction_never_changes_results() {
    // Capacity 2 with 4 query shapes cycling: every layer churns
    // constantly, so most requests land on evicted keys. Every response
    // must still match the cold reference bit-for-bit.
    let dataset = corpus();
    let sets = item_sets(&dataset);
    assert!(sets.len() >= 3, "corpus too small for the eviction test");
    let (addr, handle, metrics) = spawn(
        dataset.clone(),
        ServerConfig {
            cache_capacity: 2,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(addr).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut references: HashMap<String, (Vec<ItemSelection>, f64)> = HashMap::new();

    for _ in 0..40 {
        let items = sets[rng.random_range(0..sets.len())].clone();
        let m = rng.random_range(2..=3);
        let sweeps = rng.random_range(1..=2);
        let lambda = [1.0, 0.5][rng.random_range(0..2)];
        let params = SelectParams { m, lambda, mu: 0.1 };
        let request = Request {
            m: Some(m),
            sweeps: Some(sweeps),
            lambda: Some(lambda),
            ..Request::solve_items(items.clone())
        };
        let key = format!("{items:?}|{m}|{sweeps}|{lambda}");
        let reference = references
            .entry(key)
            .or_insert_with(|| cold_reference(&dataset, &items, &params, sweeps));
        let response = client.call(&request).unwrap();
        assert_matches_reference(&response, reference);
    }

    let snapshot = metrics.snapshot();
    assert!(
        snapshot.serve_cache_evictions > 0,
        "capacity 2 under 4 shapes must evict: {snapshot:?}"
    );
    assert!(snapshot.serve_full_hits + snapshot.serve_warm_hits > 0);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn zero_capacity_disables_caching_but_not_correctness() {
    let dataset = corpus();
    let items = item_sets(&dataset).remove(0);
    let (addr, handle, metrics) = spawn(
        dataset.clone(),
        ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(addr).unwrap();
    let request = Request::solve_items(items.clone());
    let reference = cold_reference(&dataset, &items, &SelectParams::default(), 1);
    for _ in 0..3 {
        let response = client.call(&request).unwrap();
        assert_eq!(response.cache.as_deref(), Some("cold"));
        assert_matches_reference(&response, &reference);
    }
    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.serve_full_hits + snapshot.serve_warm_hits, 0);
    assert_eq!(snapshot.serve_cache_misses, 3);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn overload_degrades_to_valid_best_so_far_answers() {
    // workers = 1 and a zero overload budget: any request that arrives
    // while another solve runs is cut immediately and must come back
    // Degraded yet structurally valid. Retry rounds de-flake the
    // scheduling race; with 12 simultaneous clients a collision is
    // near-certain per round.
    let dataset = corpus();
    let items = item_sets(&dataset).remove(0);
    let m = 3usize;
    let (addr, handle, _metrics) = spawn(
        dataset.clone(),
        ServerConfig {
            workers: 1,
            cache_capacity: 0, // keep every request on the solve path
            overload_timeout: Duration::ZERO,
            ..ServerConfig::default()
        },
    );

    let mut saw_degraded = false;
    for _round in 0..5 {
        let barrier = Arc::new(std::sync::Barrier::new(12));
        let workers: Vec<_> = (0..12)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let items = items.clone();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let request = Request {
                        sweeps: Some(3),
                        ..Request::solve_items(items)
                    };
                    barrier.wait();
                    client.call(&request).unwrap()
                })
            })
            .collect();
        for worker in workers {
            let response = worker.join().unwrap();
            match response.status {
                Status::Ok => {
                    assert!(response.objective.is_some());
                }
                Status::Degraded => {
                    saw_degraded = true;
                    // Degraded answers carry no (unconverged) objective
                    // and are never cache hits...
                    assert_eq!(response.objective, None);
                    assert_eq!(response.cache.as_deref(), Some("cold"));
                }
                Status::Error => panic!("overload must degrade, not error: {response:?}"),
            }
            // ...but are always structurally valid selections.
            assert_eq!(response.selections.len(), items.len());
            for (sel, &product) in response.selections.iter().zip(&items) {
                assert_eq!(sel.product, product);
                assert!(sel.indices.len() <= m, "budget violated: {sel:?}");
                assert_eq!(sel.indices.len(), sel.review_ids.len());
            }
        }
        if saw_degraded {
            break;
        }
    }
    assert!(
        saw_degraded,
        "12 simultaneous clients never overloaded workers=1"
    );

    Client::connect(addr).unwrap().shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert!(summary.degraded > 0);
}

#[test]
fn request_validation_answers_classified_errors() {
    let dataset = corpus();
    let n_products = dataset.products.len() as u32;
    let valid = item_sets(&dataset).remove(0);
    let (addr, handle, _metrics) = spawn(dataset, ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let cases: Vec<(Request, &str, &str)> = vec![
        (Request::bare("frobnicate"), "usage", "unknown op"),
        (Request::bare("solve"), "usage", "target or items"),
        (Request::solve(n_products + 7), "usage", "out of range"),
        (Request::solve_items(vec![]), "usage", "at least a target"),
        (
            Request {
                m: Some(0),
                ..Request::solve_items(valid.clone())
            },
            "usage",
            "m must be",
        ),
        (
            Request {
                lambda: Some(-1.0),
                ..Request::solve_items(valid.clone())
            },
            "usage",
            "lambda",
        ),
        (
            Request {
                sweeps: Some(0),
                ..Request::solve_items(valid.clone())
            },
            "usage",
            "sweeps",
        ),
        (
            Request {
                scheme: Some("hex".to_string()),
                ..Request::solve_items(valid.clone())
            },
            "usage",
            "scheme",
        ),
        (
            Request {
                shard: "nope".to_string(),
                ..Request::solve_items(valid.clone())
            },
            "usage",
            "unknown shard",
        ),
    ];
    for (request, code, needle) in cases {
        let response = client.call(&request).unwrap();
        assert_eq!(
            response.status,
            Status::Error,
            "{request:?} -> {response:?}"
        );
        assert_eq!(response.code.as_deref(), Some(code), "{request:?}");
        assert!(
            response.error.as_deref().unwrap_or("").contains(needle),
            "{request:?} -> {response:?}"
        );
    }

    // A malformed frame gets an in-band usage error before the hangup.
    // (Raw socket: send garbage JSON as a well-formed frame.)
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let garbage = b"{\"op\":7}";
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(garbage).unwrap();
    let answer: Response = comparesets_serve::protocol::read_message(&mut raw)
        .unwrap()
        .unwrap();
    assert_eq!(answer.status, Status::Error);
    assert_eq!(answer.code.as_deref(), Some("usage"));
    // Close the raw connection before shutdown: the server joins its
    // handler threads, which serve until their client hangs up.
    drop(raw);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn named_shards_route_and_ping_answers() {
    let toys = CategoryPreset::Toy.config(40, 7).generate();
    let phones = CategoryPreset::Cellphone.config(40, 7).generate();
    let toy_items = item_sets(&toys).remove(0);
    let metrics = Arc::new(SolverMetrics::new());
    let server = Server::bind(
        "127.0.0.1:0",
        vec![
            ("toys".to_string(), toys.clone()),
            ("phones".to_string(), phones),
        ],
        metrics,
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect(addr).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong.status, Status::Ok);
    assert_eq!(pong.pong.as_deref(), Some("pong"));

    // Explicit shard and default-to-first answer identically.
    let explicit = client
        .call(&Request {
            shard: "toys".to_string(),
            ..Request::solve_items(toy_items.clone())
        })
        .unwrap();
    let default = client
        .call(&Request::solve_items(toy_items.clone()))
        .unwrap();
    assert_eq!(explicit.selections, default.selections);
    assert_matches_reference(
        &explicit,
        &cold_reference(&toys, &toy_items, &SelectParams::default(), 1),
    );

    // The metrics op returns a parsable snapshot.
    let metrics_resp = client.call(&Request::bare("metrics")).unwrap();
    let snapshot: comparesets_core::MetricsSnapshot =
        serde_json::from_str(metrics_resp.info.as_deref().unwrap()).unwrap();
    assert!(snapshot.serve_requests >= 3);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn max_requests_backstop_stops_the_server() {
    let dataset = corpus();
    let (addr, handle, _metrics) = spawn(
        dataset,
        ServerConfig {
            max_requests: Some(2),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.ping().unwrap(); // hits the limit; server begins shutdown
    let summary = handle.join().unwrap();
    assert_eq!(summary.requests, 2);
}
