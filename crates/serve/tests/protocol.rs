//! Wire-protocol tests: frame round-trips, message round-trips, and
//! fuzz-style malformed-frame cases. Everything runs over in-memory
//! byte buffers — no sockets.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_serve::protocol::{
    decode, read_frame, read_message, write_frame, write_message, IngestEvent, ProtocolError,
    Request, Response, Status, MAX_FRAME_LEN,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::io::Cursor;

#[test]
fn frame_layout_is_length_prefix_then_payload() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"hello").unwrap();
    assert_eq!(&wire[..4], &5u32.to_be_bytes());
    assert_eq!(&wire[4..], b"hello");
}

#[test]
fn frames_round_trip_including_empty() {
    for payload in [&b""[..], b"x", b"{\"op\":\"ping\"}", &[0u8; 1000]] {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload).unwrap();
        let back = read_frame(&mut Cursor::new(&wire)).unwrap().unwrap();
        assert_eq!(back, payload);
    }
}

#[test]
fn multiple_frames_read_in_order_then_clean_eof() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"one").unwrap();
    write_frame(&mut wire, b"two").unwrap();
    let mut cursor = Cursor::new(&wire);
    assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"one");
    assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"two");
    assert!(read_frame(&mut cursor).unwrap().is_none());
}

#[test]
fn oversize_length_is_rejected_before_allocation() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
    // No payload follows: if the reader tried to allocate/read it first,
    // this would be Truncated instead of FrameTooLarge.
    match read_frame(&mut Cursor::new(&wire)) {
        Err(ProtocolError::FrameTooLarge(n)) => assert_eq!(n, MAX_FRAME_LEN + 1),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

#[test]
fn oversize_write_is_rejected() {
    let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
    let mut sink = Vec::new();
    assert!(matches!(
        write_frame(&mut sink, &payload),
        Err(ProtocolError::FrameTooLarge(_))
    ));
    assert!(sink.is_empty(), "nothing may be written before the check");
}

#[test]
fn truncated_frames_are_classified() {
    // Mid-length-prefix.
    let wire = [0u8, 0];
    assert!(matches!(
        read_frame(&mut Cursor::new(&wire[..])),
        Err(ProtocolError::Truncated)
    ));
    // Mid-payload.
    let mut wire = Vec::new();
    write_frame(&mut wire, b"full payload").unwrap();
    wire.truncate(wire.len() - 3);
    assert!(matches!(
        read_frame(&mut Cursor::new(&wire)),
        Err(ProtocolError::Truncated)
    ));
}

#[test]
fn malformed_payloads_are_classified_not_panics() {
    // Fuzz-style: random byte soup, random truncations of valid frames,
    // and targeted near-valid JSON. The decoder must answer every one
    // with a classified error (or a valid message), never a panic.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    for _ in 0..500 {
        let len = rng.random_range(0..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        let _ = decode::<Request>(&bytes); // must not panic
        let mut wire = Vec::new();
        write_frame(&mut wire, &bytes).unwrap();
        let cut = rng.random_range(0..=wire.len());
        let _ = read_message::<Request>(&mut Cursor::new(&wire[..cut])); // must not panic
    }
    for bad in [
        &b"not json"[..],
        b"\xff\xfe\x00",
        b"{",
        b"[]",
        b"42",
        b"{\"op\":7}",                     // wrong type for op
        b"{\"shard\":\"s\"}",              // missing required op
        b"{\"op\":\"solve\",\"m\":\"x\"}", // wrong type for m
        b"{\"op\":\"solve\",\"m\":-1}",    // out of range for usize
    ] {
        match decode::<Request>(bad) {
            Err(ProtocolError::Malformed(_)) => {}
            other => panic!("{:?}: expected Malformed, got {other:?}", bad),
        }
    }
}

#[test]
fn unknown_fields_are_ignored_for_forward_compat() {
    let req: Request = decode(b"{\"op\":\"ping\",\"from_the_future\":true}").unwrap();
    assert_eq!(req, Request::bare("ping"));
}

#[test]
fn request_messages_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..200 {
        let request = Request {
            op: ["ping", "solve", "metrics", "shutdown"][rng.random_range(0..4)].to_string(),
            shard: if rng.random_bool(0.5) {
                String::new()
            } else {
                format!("shard{}", rng.random_range(0..5))
            },
            target: rng.random_bool(0.5).then(|| rng.next_u32()),
            items: rng.random_bool(0.5).then(|| {
                (0..rng.random_range(1..6))
                    .map(|_| rng.next_u32())
                    .collect()
            }),
            max_comparatives: rng.random_bool(0.3).then(|| rng.random_range(1..20)),
            m: rng.random_bool(0.5).then(|| rng.random_range(1..10)),
            lambda: rng.random_bool(0.5).then(|| rng.random_range(0.0..1.0)),
            mu: rng.random_bool(0.5).then(|| rng.random_range(0.0..1.0)),
            sweeps: rng.random_bool(0.5).then(|| rng.random_range(1..5)),
            scheme: rng.random_bool(0.3).then(|| "binary".to_string()),
            timeout_ms: rng.random_bool(0.3).then(|| rng.random_range(1..10_000)),
            events: rng.random_bool(0.3).then(|| {
                (0..rng.random_range(1..4))
                    .map(|_| IngestEvent {
                        op: ["add", "edit", "delete"][rng.random_range(0..3)].to_string(),
                        product: rng.next_u32(),
                        review: rng.random_bool(0.5).then(|| rng.next_u32()),
                        rating: rng.random_bool(0.5).then(|| rng.random_range(1..=5)),
                        text: rng.random_bool(0.5).then(|| "streamed".to_string()),
                        mentions: rng.random_bool(0.5).then(Vec::new),
                    })
                    .collect()
            }),
        };
        let mut wire = Vec::new();
        write_message(&mut wire, &request).unwrap();
        let back: Request = read_message(&mut Cursor::new(&wire)).unwrap().unwrap();
        assert_eq!(back, request);
    }
}

#[test]
fn response_messages_round_trip() {
    use comparesets_serve::protocol::ItemSelection;
    let response = Response {
        status: Status::Degraded,
        error: None,
        code: None,
        selections: vec![ItemSelection {
            product: 3,
            indices: vec![0, 4, 9],
            review_ids: vec![17, 2, 400],
        }],
        objective: Some(1.25),
        cache: Some("warm".to_string()),
        pong: None,
        info: None,
        ingested: Some(3),
        last_seq: Some(41),
        retry_after_ms: Some(1500),
        health: Some("ready".to_string()),
        wal_lag: Some(2),
        resident_bytes: Some(4096),
    };
    let mut wire = Vec::new();
    write_message(&mut wire, &response).unwrap();
    let back: Response = read_message(&mut Cursor::new(&wire)).unwrap().unwrap();
    assert_eq!(back, response);

    for status in [Status::Ok, Status::Degraded, Status::Error] {
        let r = Response {
            status,
            ..Response::ok()
        };
        let mut wire = Vec::new();
        write_message(&mut wire, &r).unwrap();
        let back: Response = read_message(&mut Cursor::new(&wire)).unwrap().unwrap();
        assert_eq!(back.status, status);
    }
}

#[test]
fn error_responses_carry_class_and_cause() {
    let r = Response::error("usage", "unknown op \"frob\"");
    assert_eq!(r.status, Status::Error);
    assert_eq!(r.code.as_deref(), Some("usage"));
    assert!(r.error.as_deref().unwrap().contains("frob"));
}
