//! Live-corpus serving tests: ingest semantics over real sockets, the
//! cache-freshness guarantee (no hit ever predates an item's last
//! mutation), and durable restart from the WAL + snapshot pair.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_core::{
    comparesets_plus_objective, solve_comparesets_plus_sweeps_with, InstanceContext, OpinionScheme,
    SelectParams, SolveOptions, SolverMetrics,
};
use comparesets_data::wal::{EventKind, ReviewEvent};
use comparesets_data::{
    AspectId, AspectMention, CategoryPreset, ComparisonInstance, Dataset, Polarity, ProductId,
    ReviewId,
};
use comparesets_serve::{
    Client, IngestEvent, ItemSelection, Request, Server, ServerConfig, Status,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

fn corpus() -> Dataset {
    CategoryPreset::Toy.config(60, 13).generate()
}

fn items_of(dataset: &Dataset) -> Vec<u32> {
    let inst = dataset.instances().into_iter().next().unwrap().truncated(3);
    inst.items.iter().map(|p| p.0).collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "comparesets_ingest_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn(
    dataset: Dataset,
    config: ServerConfig,
) -> (
    SocketAddr,
    std::thread::JoinHandle<comparesets_serve::ServeSummary>,
    Arc<SolverMetrics>,
) {
    let metrics = Arc::new(SolverMetrics::new());
    let server = Server::bind(
        "127.0.0.1:0",
        vec![("main".to_string(), dataset)],
        Arc::clone(&metrics),
        config,
    )
    .expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle, metrics)
}

fn mentions(aspect: u32) -> Vec<AspectMention> {
    vec![AspectMention {
        aspect: AspectId(aspect),
        polarity: Polarity::Positive,
    }]
}

/// Mirror the server's `add` resolution onto a local dataset copy, so
/// tests can compute the expected post-ingest corpus independently.
fn mirror_add(dataset: &mut Dataset, product: u32, mentions: Vec<AspectMention>) {
    let ev = ReviewEvent {
        seq: 1, // seq is irrelevant to direct application
        kind: EventKind::Add,
        product: ProductId(product),
        review: ReviewId(dataset.reviews.len() as u32),
        reviewer: dataset.num_reviewers,
        rating: 4,
        text: String::new(),
        mentions,
    };
    dataset.apply_event(&ev).unwrap();
}

/// Cold in-process reference solve rendered to the wire shape.
fn cold_reference(dataset: &Dataset, items: &[u32]) -> (Vec<ItemSelection>, f64) {
    let params = SelectParams::default();
    let instance = ComparisonInstance {
        items: items.iter().map(|&id| ProductId(id)).collect(),
    };
    let ctx = InstanceContext::build(dataset, &instance, OpinionScheme::Binary);
    let selections = solve_comparesets_plus_sweeps_with(&ctx, &params, 1, &SolveOptions::default());
    let objective = comparesets_plus_objective(&ctx, &selections, params.lambda, params.mu);
    let wire = selections
        .iter()
        .enumerate()
        .map(|(i, sel)| {
            let item = ctx.item(i);
            ItemSelection {
                product: item.product.0,
                indices: sel.indices.clone(),
                review_ids: sel.review_ids(item).iter().map(|r| r.0).collect(),
            }
        })
        .collect();
    (wire, objective)
}

fn assert_matches_reference(
    response: &comparesets_serve::Response,
    reference: &(Vec<ItemSelection>, f64),
) {
    assert_eq!(response.status, Status::Ok, "{response:?}");
    assert_eq!(response.selections, reference.0, "selections diverged");
    assert_eq!(
        response.objective.map(f64::to_bits),
        Some(reference.1.to_bits()),
        "objective diverged"
    );
}

#[test]
fn a_cache_hit_never_predates_an_items_last_mutation() {
    let dataset = corpus();
    let items = items_of(&dataset);
    let target = items[0];
    let (addr, handle, metrics) = spawn(dataset.clone(), ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();
    let request = Request::solve_items(items.clone());

    // Prime every cache layer, then verify the exact-repeat full hit.
    client.call(&request).unwrap();
    let full = client.call(&request).unwrap();
    assert_eq!(full.cache.as_deref(), Some("full"));

    // Mutate the target item. The memoized answer must become
    // unreachable: the next solve may not be a full hit and must equal
    // a cold solve over the *mutated* corpus bit-for-bit.
    let ack = client
        .call(&Request::ingest(vec![IngestEvent::add(
            target,
            mentions(0),
        )]))
        .unwrap();
    assert_eq!(ack.status, Status::Ok, "{ack:?}");
    assert_eq!(ack.ingested, Some(1));

    let mut mutated = dataset.clone();
    mirror_add(&mut mutated, target, mentions(0));
    let fresh = client.call(&request).unwrap();
    assert_ne!(fresh.cache.as_deref(), Some("full"), "stale full hit");
    assert_ne!(fresh.cache.as_deref(), Some("warm"), "stale warm hit");
    assert_matches_reference(&fresh, &cold_reference(&mutated, &items));

    // An ingest on a product *outside* the item set leaves the freshly
    // memoized answer reachable — versions of the queried items are
    // unchanged.
    let outside = (0..dataset.products.len() as u32)
        .find(|id| !items.contains(id))
        .unwrap();
    client
        .call(&Request::ingest(vec![IngestEvent::add(
            outside,
            mentions(1),
        )]))
        .unwrap();
    let again = client.call(&request).unwrap();
    assert_eq!(again.cache.as_deref(), Some("full"));
    assert_matches_reference(&again, &cold_reference(&mutated, &items));

    assert!(metrics.snapshot().cache_invalidations > 0);
    drop(client);
    Client::connect(addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn edits_and_deletes_apply_atomically_in_one_batch() {
    let dataset = corpus();
    let items = items_of(&dataset);
    let target = items[0];
    let victim = dataset.reviews_of(ProductId(target))[0];
    let (addr, handle, _metrics) = spawn(dataset.clone(), ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let batch = vec![
        IngestEvent::add(target, mentions(0)),
        IngestEvent::edit(target, victim.0, mentions(2)),
        IngestEvent::delete(target, victim.0),
    ];
    let ack = client.call(&Request::ingest(batch)).unwrap();
    assert_eq!(ack.status, Status::Ok, "{ack:?}");
    assert_eq!(ack.ingested, Some(3));
    assert_eq!(ack.last_seq, Some(3));

    let mut mutated = dataset.clone();
    mirror_add(&mut mutated, target, mentions(0));
    mutated
        .apply_event(&ReviewEvent {
            seq: 2,
            kind: EventKind::Edit,
            product: ProductId(target),
            review: victim,
            reviewer: mutated.reviews[victim.0 as usize].reviewer,
            rating: mutated.reviews[victim.0 as usize].rating,
            text: mutated.reviews[victim.0 as usize].text.clone(),
            mentions: mentions(2),
        })
        .unwrap();
    mutated
        .apply_event(&ReviewEvent {
            seq: 3,
            kind: EventKind::Delete,
            product: ProductId(target),
            review: victim,
            reviewer: 0,
            rating: 0,
            text: String::new(),
            mentions: Vec::new(),
        })
        .unwrap();
    let response = client.call(&Request::solve_items(items.clone())).unwrap();
    assert_matches_reference(&response, &cold_reference(&mutated, &items));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn invalid_ingests_reject_the_whole_batch_untouched() {
    let dataset = corpus();
    let items = items_of(&dataset);
    let (addr, handle, _metrics) = spawn(dataset.clone(), ServerConfig::default());
    let mut client = Client::connect(addr).unwrap();

    let lonely = ProductId(items[0]);
    let keep_one: Vec<IngestEvent> = dataset.reviews_of(lonely)[1..]
        .iter()
        .map(|r| IngestEvent::delete(items[0], r.0))
        .collect();
    client.call(&Request::ingest(keep_one)).unwrap();
    let last = dataset.reviews_of(lonely)[0].0;

    let cases: Vec<(Request, &str, &str)> = vec![
        (Request::bare("ingest"), "usage", "non-empty events"),
        (Request::ingest(vec![]), "usage", "non-empty events"),
        (
            Request::ingest(vec![IngestEvent {
                op: "frob".to_string(),
                ..IngestEvent::add(0, vec![])
            }]),
            "usage",
            "unknown ingest op",
        ),
        (
            Request::ingest(vec![IngestEvent {
                review: None,
                ..IngestEvent::delete(0, 0)
            }]),
            "usage",
            "needs a review id",
        ),
        (
            Request::ingest(vec![IngestEvent::add(u32::MAX, vec![])]),
            "data",
            "out of range",
        ),
        // A good add followed by a bad delete: nothing applies.
        (
            Request::ingest(vec![
                IngestEvent::add(items[1], mentions(0)),
                IngestEvent::delete(items[0], last),
            ]),
            "data",
            "last review",
        ),
    ];
    for (request, code, needle) in cases {
        let response = client.call(&request).unwrap();
        assert_eq!(
            response.status,
            Status::Error,
            "{request:?} -> {response:?}"
        );
        assert_eq!(response.code.as_deref(), Some(code), "{request:?}");
        assert!(
            response.error.as_deref().unwrap_or("").contains(needle),
            "{request:?} -> {response:?}"
        );
    }

    // The rejected add above must not have leaked into the corpus: a
    // solve over an untouched item set still matches the pristine
    // reference (items[1] saw only rejected events).
    let untouched: Vec<u32> = items.clone();
    let response = client
        .call(&Request::solve_items(untouched.clone()))
        .unwrap();
    // items[0] lost reviews to the setup deletes, so compute the
    // reference over the same surviving corpus.
    let mut survived = dataset.clone();
    for r in dataset.reviews_of(lonely)[1..].iter() {
        survived
            .apply_event(&ReviewEvent {
                seq: 1,
                kind: EventKind::Delete,
                product: lonely,
                review: *r,
                reviewer: 0,
                rating: 0,
                text: String::new(),
                mentions: Vec::new(),
            })
            .unwrap();
    }
    assert_matches_reference(&response, &cold_reference(&survived, &untouched));

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn restarting_from_the_data_dir_resumes_every_acknowledged_ingest() {
    let dataset = corpus();
    let items = items_of(&dataset);
    let target = items[0];
    let dir = temp_dir("restart");

    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        snapshot_every: 2, // force a snapshot + compaction mid-run
        ..ServerConfig::default()
    };
    let (addr, handle, metrics) = spawn(dataset.clone(), config.clone());
    let mut client = Client::connect(addr).unwrap();
    for k in 0..3u32 {
        let ack = client
            .call(&Request::ingest(vec![IngestEvent::add(
                target,
                mentions(k),
            )]))
            .unwrap();
        assert_eq!(ack.status, Status::Ok, "{ack:?}");
        assert_eq!(ack.last_seq, Some(u64::from(k) + 1));
    }
    let snapshot = metrics.snapshot();
    assert_eq!(snapshot.wal_appends, 3);
    assert_eq!(snapshot.wal_fsyncs, 3);
    assert!(snapshot.snapshot_writes >= 1, "{snapshot:?}");
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Restart against the same data dir, passing the *original* seed:
    // the recovered store must win, so solves see all three adds.
    let (addr, handle, _metrics) = spawn(dataset.clone(), config);
    let mut client = Client::connect(addr).unwrap();
    let mut mutated = dataset.clone();
    for k in 0..3u32 {
        mirror_add(&mut mutated, target, mentions(k));
    }
    let response = client.call(&Request::solve_items(items.clone())).unwrap();
    assert_matches_reference(&response, &cold_reference(&mutated, &items));

    // And the restarted store keeps accepting durable appends at the
    // recovered sequence.
    let ack = client
        .call(&Request::ingest(vec![IngestEvent::add(
            target,
            mentions(0),
        )]))
        .unwrap();
    assert_eq!(ack.last_seq, Some(4));

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
