//! Typed errors for the core solve path.
//!
//! The checked solver entry points (`solve_checked`, `solve_crs_checked`,
//! `solve_comparesets_checked`, `solve_comparesets_plus_checked`) report
//! failures through [`CoreError`] instead of panicking. Batch solvers
//! isolate failures per item: a degenerate item yields an `Err` in its
//! slot of the result vector while every other item still solves — one
//! bad item never poisons the batch. See ARCHITECTURE.md ("Error handling
//! & degradation policy").

use std::fmt;

use comparesets_linalg::SolveError;

use crate::instance::Selection;

/// Errors produced by the core selection solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A solver parameter was structurally invalid (m = 0, NaN weights, …).
    InvalidParams(&'static str),
    /// Operand shapes are incompatible (target/block dimension mismatch).
    DimensionMismatch {
        /// Human-readable description of the check that failed.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        actual: usize,
    },
    /// The numerical solver failed on one item's regression.
    Solver {
        /// Index of the item whose regression failed.
        item: usize,
        /// The underlying classified linear-algebra error.
        source: SolveError,
    },
    /// The solve's cancellation token fired (explicit cancel or deadline
    /// expiry) before the solver finished refining.
    ///
    /// This is a *soft* failure with anytime semantics: `best_so_far`
    /// carries one feasible selection per item — the state the solve had
    /// reached when it observed the fired token (items whose own
    /// regression failed hard contribute an empty selection). The work is
    /// never discarded; the caller decides whether a partially refined
    /// answer is acceptable.
    DeadlineExceeded {
        /// Best feasible per-item selections at the moment of expiry.
        best_so_far: Vec<Selection>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(msg) => write!(f, "invalid solver parameters: {msg}"),
            CoreError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            CoreError::Solver { item, source } => {
                write!(f, "solver failed on item {item}: {source}")
            }
            CoreError::DeadlineExceeded { best_so_far } => {
                write!(
                    f,
                    "deadline exceeded; best-so-far selections for {} items available",
                    best_so_far.len()
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Solver { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Validate the shared solver parameters; every checked entry point calls
/// this before touching item data.
pub(crate) fn validate_params(params: &crate::SelectParams) -> Result<(), CoreError> {
    if params.m == 0 {
        return Err(CoreError::InvalidParams("m must be at least 1"));
    }
    if !params.lambda.is_finite() {
        return Err(CoreError::InvalidParams("lambda must be finite"));
    }
    if !params.mu.is_finite() {
        return Err(CoreError::InvalidParams("mu must be finite"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_item_and_cause() {
        let e = CoreError::Solver {
            item: 7,
            source: SolveError::NonFinite {
                context: "nomp rhs",
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("item 7"));
        assert!(msg.contains("nomp rhs"));
    }

    #[test]
    fn source_chains_to_linalg() {
        use std::error::Error;
        let e = CoreError::Solver {
            item: 0,
            source: SolveError::Singular { pivot: 1 },
        };
        assert!(e.source().is_some());
        assert!(CoreError::InvalidParams("m").source().is_none());
    }

    #[test]
    fn validate_params_classifies_bad_values() {
        let ok = crate::SelectParams::default();
        assert!(validate_params(&ok).is_ok());
        let mut bad = ok;
        bad.m = 0;
        assert!(matches!(
            validate_params(&bad),
            Err(CoreError::InvalidParams(_))
        ));
        let mut bad = ok;
        bad.lambda = f64::NAN;
        assert!(validate_params(&bad).is_err());
        let mut bad = ok;
        bad.mu = f64::INFINITY;
        assert!(validate_params(&bad).is_err());
    }
}
