//! CRS — Characteristic Review Selection (Lappas, Crovella & Terzi,
//! KDD'12), the paper's single-item baseline (§4.1.2).
//!
//! CRS selects, for each item independently, up to `m` reviews whose
//! opinion distribution `π(Sᵢ)` is as close as possible to the item's
//! overall distribution `τᵢ = π(ℛᵢ)` — the special case of CompaReSetS
//! with a single item and λ = 0. It shares the Integer-Regression
//! machinery but regresses on the opinion block only.

use crate::comparesets::classify_deadline;
use crate::error::CoreError;
use crate::instance::{InstanceContext, Selection};
use crate::integer_regression::{
    integer_regression_ctl, try_integer_regression_ctl, RegressionTask,
};
use crate::SolveOptions;
use comparesets_linalg::vector::sq_distance;
use comparesets_linalg::{with_pooled_workspace, NompWorkspace};
use rayon::prelude::*;

/// Run CRS on every item of the instance independently.
pub fn solve_crs(ctx: &InstanceContext, m: usize) -> Vec<Selection> {
    solve_crs_with(ctx, m, &SolveOptions::default())
}

/// [`solve_crs`] with execution options: the per-item regressions are
/// independent and fan out over rayon when [`SolveOptions::parallel`] is
/// set, collected in item order (identical results either way).
pub fn solve_crs_with(ctx: &InstanceContext, m: usize, opts: &SolveOptions) -> Vec<Selection> {
    let ctl = opts.ctl();
    let solve_item = |i: usize, ws: &mut NompWorkspace| {
        let item = ctx.item(i);
        let tau = ctx.tau(i);
        let task = RegressionTask::build_with(ctx.space(), item, tau, &[], opts.backend);
        integer_regression_ctl(
            &task,
            m,
            |sel| sq_distance(tau, &ctx.space().pi(item, &sel.indices)),
            ws,
            ctl,
        )
    };
    if opts.parallel {
        crate::run_on_pool(opts, || {
            (0..ctx.num_items())
                .into_par_iter()
                .map(|i| with_pooled_workspace(|ws| solve_item(i, ws)))
                .collect()
        })
    } else {
        let mut ws = NompWorkspace::new();
        (0..ctx.num_items())
            .map(|i| solve_item(i, &mut ws))
            .collect()
    }
}

/// Checked variant of [`solve_crs_with`]: per-item failure isolation with
/// the same slot contract as
/// [`crate::comparesets::solve_comparesets_checked`].
///
/// # Errors
/// [`CoreError::InvalidParams`] when `m == 0` (outer); per-item
/// [`CoreError::Solver`] in the slots (inner);
/// [`CoreError::DeadlineExceeded`] with the feasible best-so-far
/// selections when the options' cancellation token fired mid-solve.
pub fn solve_crs_checked(
    ctx: &InstanceContext,
    m: usize,
    opts: &SolveOptions,
) -> Result<Vec<Result<Selection, CoreError>>, CoreError> {
    if m == 0 {
        return Err(CoreError::InvalidParams("m must be at least 1"));
    }
    let ctl = opts.ctl();
    let solve_item = |i: usize, ws: &mut NompWorkspace| -> Result<Selection, CoreError> {
        let item = ctx.item(i);
        let tau = ctx.tau(i);
        let task = RegressionTask::try_build_with(ctx.space(), item, tau, &[], opts.backend)?;
        try_integer_regression_ctl(
            &task,
            m,
            |sel| sq_distance(tau, &ctx.space().pi(item, &sel.indices)),
            ws,
            ctl,
        )
        .map_err(|source| CoreError::Solver { item: i, source })
    };
    let slots = if opts.parallel {
        crate::run_on_pool(opts, || {
            (0..ctx.num_items())
                .into_par_iter()
                .map(|i| with_pooled_workspace(|ws| solve_item(i, ws)))
                .collect()
        })
    } else {
        let mut ws = NompWorkspace::new();
        (0..ctx.num_items())
            .map(|i| solve_item(i, &mut ws))
            .collect()
    };
    classify_deadline(slots, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceContext, Item};
    use crate::space::OpinionScheme;
    use comparesets_data::{CategoryPreset, Polarity, ProductId, ReviewId};

    #[test]
    fn crs_matches_opinion_distribution_on_working_example() {
        let item = crate::space::fixtures::working_example_item();
        let ctx = InstanceContext::from_items(5, vec![item], OpinionScheme::Binary);
        let sels = solve_crs(&ctx, 3);
        assert_eq!(sels.len(), 1);
        let pi = ctx.space().pi(ctx.item(0), &sels[0].indices);
        assert!(sq_distance(ctx.tau(0), &pi) < 1e-12, "pi {pi:?}");
    }

    #[test]
    fn crs_selects_within_budget_for_every_item() {
        let d = CategoryPreset::Cellphone.config(60, 17).generate();
        let inst = d.instances().into_iter().next().unwrap().truncated(4);
        let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
        for m in [1, 3, 5] {
            let sels = solve_crs(&ctx, m);
            assert_eq!(sels.len(), ctx.num_items());
            for (i, s) in sels.iter().enumerate() {
                assert!(!s.is_empty(), "item {i} empty at m={m}");
                assert!(s.len() <= m);
                assert!(s.indices.iter().all(|&r| r < ctx.item(i).num_reviews()));
            }
        }
    }

    #[test]
    fn crs_beats_worst_single_review() {
        // CRS's selection cost must be no worse than the best single review
        // (it explicitly falls back to that).
        let item = Item::from_mentions(
            ProductId(0),
            vec![
                (ReviewId(0), vec![(0, Polarity::Positive)]),
                (ReviewId(1), vec![(1, Polarity::Negative)]),
                (
                    ReviewId(2),
                    vec![(0, Polarity::Positive), (1, Polarity::Negative)],
                ),
            ],
        );
        let ctx = InstanceContext::from_items(2, vec![item], OpinionScheme::Binary);
        let sel = &solve_crs(&ctx, 2)[0];
        let cost = sq_distance(ctx.tau(0), &ctx.space().pi(ctx.item(0), &sel.indices));
        for r in 0..3 {
            let single = sq_distance(ctx.tau(0), &ctx.space().pi(ctx.item(0), &[r]));
            assert!(cost <= single + 1e-12);
        }
    }

    #[test]
    fn checked_crs_matches_unchecked_and_validates_m() {
        let item = crate::space::fixtures::working_example_item();
        let ctx = InstanceContext::from_items(5, vec![item], OpinionScheme::Binary);
        let opts = SolveOptions::default();
        let legacy = solve_crs(&ctx, 3);
        let checked: Vec<_> = solve_crs_checked(&ctx, 3, &opts)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(legacy, checked);
        assert!(matches!(
            solve_crs_checked(&ctx, 0, &opts),
            Err(CoreError::InvalidParams(_))
        ));
    }
}
