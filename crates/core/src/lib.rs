//! CompaReSetS core: comparative review-set selection across multiple items.
//!
//! This crate implements the paper's primary contribution:
//!
//! * **Problem 1 — CompaReSetS** (§2.1.1): for a target item p₁ and
//!   comparative items p₂…pₙ, select at most `m` reviews per item
//!   minimising `Σᵢ Δ(τᵢ, π(Sᵢ)) + λ² Σᵢ Δ(Γ, φ(Sᵢ))` (Equation 1).
//! * **Problem 2 — CompaReSetS+** (§2.1.2): additionally penalise the
//!   pairwise aspect distance between the selected sets,
//!   `μ² Σᵢ<ⱼ Δ(φ(Sᵢ), φ(Sⱼ))` (Equation 5), solved by alternating
//!   Integer-Regression (Algorithm 1).
//! * The **CRS** single-item baseline (Lappas, Crovella & Terzi, KDD'12),
//!   of which CompaReSetS is a strict generalisation (n = 1, λ = 0).
//! * The **greedy** and **random** selection baselines of §4.1.2.
//! * The three **opinion definitions** of §4.2.3 (binary, 3-polarity,
//!   unary-scale).
//!
//! ## Walkthrough
//!
//! ```
//! use comparesets_data::CategoryPreset;
//! use comparesets_core::{InstanceContext, OpinionScheme, SelectParams};
//!
//! let dataset = CategoryPreset::Cellphone.config(60, 7).generate();
//! let instance = dataset.instances().into_iter().next().unwrap();
//! let ctx = InstanceContext::build(&dataset, &instance.truncated(5), OpinionScheme::Binary);
//!
//! let params = SelectParams { m: 3, lambda: 1.0, mu: 0.1 };
//! let selections = comparesets_core::solve_comparesets_plus(&ctx, &params);
//! assert_eq!(selections.len(), ctx.num_items());
//! for s in &selections {
//!     assert!(s.indices.len() <= 3);
//! }
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baselines;
pub mod comparesets;
pub mod comparison_table;
pub mod crs;
pub mod error;
pub mod exhaustive;
pub mod incremental;
pub mod instance;
pub mod integer_regression;
pub mod objective;
pub mod space;

pub use baselines::{solve_greedy, solve_random};
pub use comparesets::{
    solve_comparesets, solve_comparesets_checked, solve_comparesets_plus,
    solve_comparesets_plus_checked, solve_comparesets_plus_sweeps,
    solve_comparesets_plus_sweeps_warm_with, solve_comparesets_plus_sweeps_with,
    solve_comparesets_plus_with, solve_comparesets_with,
};
pub use comparison_table::{AspectRow, CellCounts, ComparisonTable};
pub use crs::{solve_crs, solve_crs_checked, solve_crs_with};
pub use error::CoreError;
pub use exhaustive::{solve_exhaustive, solve_exhaustive_item};
pub use incremental::{IncrementalSession, SessionEvent};
pub use instance::{InstanceContext, Item, ReviewFeature, Selection};
pub use integer_regression::{
    integer_regression, integer_regression_ctl, integer_regression_metered,
    integer_regression_session_ctl, integer_regression_warm_ctl, integer_regression_with,
    try_integer_regression, try_integer_regression_ctl, try_integer_regression_metered,
    try_integer_regression_session_ctl, try_integer_regression_warm_ctl,
    try_integer_regression_with, MatrixBackend, RegressionTask, RegressionWarm, TaskMatrix,
    DENSITY_CROSSOVER,
};
pub use objective::{
    comparesets_objective, comparesets_plus_objective, item_objective, pair_distance,
};
pub use space::{OpinionScheme, VectorSpace};

pub use comparesets_obs::{
    CancelToken, MetricsReport, MetricsSnapshot, SolveCtl, SolverMetrics, METRICS_SCHEMA,
};
use std::sync::Arc;
use std::time::Duration;

/// Shared knobs for the selection solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectParams {
    /// Maximum number of reviews selected per item (m).
    pub m: usize,
    /// Trade-off between opinion and aspect distance (λ, Equation 1).
    pub lambda: f64,
    /// Weight of the cross-item aspect coupling (μ, Equation 5).
    pub mu: f64,
}

impl Default for SelectParams {
    /// The paper's tuned setting: m = 3, λ = 1, μ = 0.1 (§4.1.4).
    fn default() -> Self {
        SelectParams {
            m: 3,
            lambda: 1.0,
            mu: 0.1,
        }
    }
}

/// Execution knobs orthogonal to the model parameters: how to run a
/// solver, never what it computes.
///
/// **Determinism guarantee:** for any fixed inputs, every solver returns
/// the same selections and objectives under every `SolveOptions` value.
/// Parallel runs fan independent per-item regressions over rayon and
/// collect the results in item order (never completion order), so turning
/// parallelism on is purely a wall-clock decision.
///
/// The optional `metrics` collector is likewise observation-only: solvers
/// count pursuit iterations, refits, and fallback activations into it
/// (see ARCHITECTURE.md §7) without ever reading it back, and with the
/// default `None` no counter or clock is touched at all. Because the
/// per-item work is identical under parallel and sequential execution,
/// the aggregate counters are too.
///
/// The optional `cancel` token is the one knob that *can* change results —
/// by design: once the token fires (explicit cancel or deadline expiry)
/// the solvers stop refining and return their best feasible iterate so
/// far (anytime semantics, ARCHITECTURE.md §8). A token that never fires
/// leaves every result bit-identical to running without one.
///
/// `warm_start` (on by default) lets the alternating solvers carry a
/// per-item [`RegressionWarm`] cache across Gauss–Seidel sweeps and
/// incremental re-solves: re-solves whose target is unchanged are served
/// from cache, and changed targets replay the previous trajectory with
/// validation (ARCHITECTURE.md §9). Selections are pinned equal to the
/// cold path by `crates/core/tests/warm_start.rs`; set `warm_start` to
/// `false` to force every sweep to solve from scratch (the cold baseline
/// the `alternation/*` benches compare against).
///
/// `backend` picks the design-matrix storage ([`MatrixBackend`]): CSC,
/// dense, or per-task automatic selection by stored density against
/// [`DENSITY_CROSSOVER`] (the default). The NOMP kernels are bit-exact
/// across representations, so this too is purely a wall-clock/memory
/// decision — selections never change with the backend (pinned by
/// `crates/core/tests/backend_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Fan independent per-item regression tasks out over rayon's pool.
    pub parallel: bool,
    /// Worker count for parallel runs; `None` uses rayon's global default
    /// (all cores). Ignored when `parallel` is false.
    pub threads: Option<usize>,
    /// Carry per-item warm-start caches across alternating sweeps and
    /// incremental re-solves (on by default).
    pub warm_start: bool,
    /// Design-matrix storage backend for every regression the solve
    /// builds ([`MatrixBackend::Auto`] by default: CSC below the
    /// [`DENSITY_CROSSOVER`] density, dense at or above it).
    pub backend: MatrixBackend,
    /// Optional solver-metrics collector shared by every regression the
    /// solve performs; `None` (the default) disables all counting.
    pub metrics: Option<Arc<SolverMetrics>>,
    /// Optional cancellation/deadline token polled by every iterative
    /// kernel the solve enters; `None` (the default) costs one pointer
    /// check per poll site and changes nothing.
    pub cancel: Option<Arc<CancelToken>>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            parallel: false,
            threads: None,
            warm_start: true,
            backend: MatrixBackend::Auto,
            metrics: None,
            cancel: None,
        }
    }
}

impl SolveOptions {
    /// Sequential execution (the default).
    pub fn sequential() -> Self {
        SolveOptions::default()
    }

    /// Parallel execution on rayon's global pool.
    pub fn parallel() -> Self {
        SolveOptions {
            parallel: true,
            ..SolveOptions::default()
        }
    }

    /// Parallel execution on a dedicated pool of `n` workers.
    pub fn with_threads(n: usize) -> Self {
        SolveOptions {
            parallel: true,
            threads: Some(n),
            ..SolveOptions::default()
        }
    }

    /// This options value with a metrics collector attached.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<SolverMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// This options value with a cancellation token attached.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<CancelToken>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// This options value with a fresh deadline token firing `timeout`
    /// from now. The clock starts here, not at the solve call.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_cancel(Arc::new(CancelToken::with_timeout(timeout)))
    }

    /// This options value with warm starts switched on or off.
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// This options value with an explicit design-matrix backend.
    #[must_use]
    pub fn with_backend(mut self, backend: MatrixBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Borrow the collector in the form the linalg layer consumes.
    pub(crate) fn metrics_ref(&self) -> Option<&SolverMetrics> {
        self.metrics.as_deref()
    }

    /// The control handle (metrics + token) the kernels consume.
    pub(crate) fn ctl(&self) -> SolveCtl<'_> {
        SolveCtl::new(self.metrics.as_deref(), self.cancel.as_deref())
    }

    /// Non-consuming peek: has this options value's token fired? Always
    /// false without a token. Checked solvers call this after the batch
    /// to decide whether to classify the result as deadline-expired.
    pub(crate) fn cancel_fired(&self) -> bool {
        self.cancel.as_deref().is_some_and(CancelToken::fired)
    }
}

/// Run `f` on the pool the options ask for: a dedicated pool when a thread
/// count is pinned, rayon's global pool otherwise. Falls back to the
/// calling thread if the dedicated pool cannot be built.
pub(crate) fn run_on_pool<R: Send>(opts: &SolveOptions, f: impl FnOnce() -> R + Send) -> R {
    match opts.threads {
        Some(n) => match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
            Ok(pool) => pool.install(f),
            Err(_) => f(),
        },
        None => f(),
    }
}

/// Which selection algorithm to run; used by the evaluation harness to
/// sweep the baselines of §4.1.2 uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Uniform random selection of m reviews (seeded).
    Random,
    /// Characteristic Review Selection, single item at a time (Lappas'12).
    Crs,
    /// Greedy one-by-one selection minimising Equation 3.
    CompareSetsGreedy,
    /// Problem 1 solved by Integer-Regression.
    CompareSets,
    /// Problem 2 solved by alternating Integer-Regression (Algorithm 1).
    CompareSetsPlus,
}

impl Algorithm {
    /// All algorithms in the order the paper's tables list them.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Random,
        Algorithm::Crs,
        Algorithm::CompareSetsGreedy,
        Algorithm::CompareSets,
        Algorithm::CompareSetsPlus,
    ];

    /// Name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Random => "Random",
            Algorithm::Crs => "Crs",
            Algorithm::CompareSetsGreedy => "CompaReSetS_Greedy",
            Algorithm::CompareSets => "CompaReSetS",
            Algorithm::CompareSetsPlus => "CompaReSetS+",
        }
    }
}

/// Run the chosen algorithm on a prepared instance context.
///
/// `seed` only affects [`Algorithm::Random`].
pub fn solve(
    ctx: &InstanceContext,
    algorithm: Algorithm,
    params: &SelectParams,
    seed: u64,
) -> Vec<Selection> {
    solve_with(ctx, algorithm, params, seed, &SolveOptions::default())
}

/// [`solve`] with execution options. The regression-based solvers (CRS,
/// CompaReSetS, CompaReSetS+) honour [`SolveOptions::parallel`]; the
/// random and greedy baselines are cheap enough that they always run
/// sequentially. Selections are identical for every options value.
pub fn solve_with(
    ctx: &InstanceContext,
    algorithm: Algorithm,
    params: &SelectParams,
    seed: u64,
    opts: &SolveOptions,
) -> Vec<Selection> {
    match algorithm {
        Algorithm::Random => solve_random(ctx, params.m, seed),
        Algorithm::Crs => solve_crs_with(ctx, params.m, opts),
        Algorithm::CompareSetsGreedy => solve_greedy(ctx, params),
        Algorithm::CompareSets => solve_comparesets_with(ctx, params, opts),
        Algorithm::CompareSetsPlus => solve_comparesets_plus_with(ctx, params, opts),
    }
}

/// Checked variant of [`solve_with`]: validates parameters up front and
/// isolates per-item solver failures instead of panicking or silently
/// degrading.
///
/// The regression-based algorithms (CRS, CompaReSetS, CompaReSetS+) route
/// through their `_checked` solvers, so a degenerate item lands as
/// `Err(CoreError::Solver { item, .. })` in its slot while the rest of the
/// batch completes. The random and greedy baselines cannot fail
/// numerically; their selections are wrapped in `Ok` unconditionally. On
/// well-posed inputs every slot is `Ok` and bit-identical to
/// [`solve_with`].
///
/// # Errors
/// [`CoreError::InvalidParams`] on structurally invalid parameters.
pub fn solve_checked(
    ctx: &InstanceContext,
    algorithm: Algorithm,
    params: &SelectParams,
    seed: u64,
    opts: &SolveOptions,
) -> Result<Vec<Result<Selection, CoreError>>, CoreError> {
    error::validate_params(params)?;
    match algorithm {
        Algorithm::Random => Ok(solve_random(ctx, params.m, seed)
            .into_iter()
            .map(Ok)
            .collect()),
        Algorithm::Crs => solve_crs_checked(ctx, params.m, opts),
        Algorithm::CompareSetsGreedy => Ok(solve_greedy(ctx, params).into_iter().map(Ok).collect()),
        Algorithm::CompareSets => solve_comparesets_checked(ctx, params, opts),
        Algorithm::CompareSetsPlus => solve_comparesets_plus_checked(ctx, params, 1, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper_tuning() {
        let p = SelectParams::default();
        assert_eq!(p.m, 3);
        assert_eq!(p.lambda, 1.0);
        assert_eq!(p.mu, 0.1);
    }

    #[test]
    fn algorithm_names_match_tables() {
        assert_eq!(Algorithm::Crs.name(), "Crs");
        assert_eq!(Algorithm::CompareSetsPlus.name(), "CompaReSetS+");
        assert_eq!(Algorithm::ALL.len(), 5);
    }
}
