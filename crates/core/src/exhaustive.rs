//! Exhaustive (provably optimal) review selection for small instances.
//!
//! CompaReSetS is NP-complete (§2.2), but Equation 1 decomposes per item
//! (Equation 3), so for an item with `|ℛᵢ|` reviews the optimum over all
//! subsets of size ≤ m can be found by enumerating `Σ_{s≤m} C(|ℛᵢ|, s)`
//! candidates. This is intractable at corpus scale — which is the paper's
//! point — but perfectly feasible for |ℛᵢ| ≲ 20, m ≤ 3, giving us an
//! *oracle* to measure the Integer-Regression approximation gap
//! (`comparesets-eval`'s ablation experiment) and to harden tests.

use crate::instance::{InstanceContext, Selection};
use crate::objective::item_objective;
use crate::SelectParams;

/// Upper bound on enumerated candidates before [`solve_exhaustive`]
/// refuses (combination counts explode fast; callers should fall back to
/// Integer-Regression beyond this).
pub const MAX_CANDIDATES: u128 = 2_000_000;

/// Number of subsets of size ≤ m from n reviews (saturating).
pub fn candidate_count(n: usize, m: usize) -> u128 {
    let mut total: u128 = 0;
    let mut c: u128 = 1; // C(n, 0)
    for s in 0..=m.min(n) {
        if s > 0 {
            c = c.saturating_mul((n - s + 1) as u128) / s as u128;
        }
        total = total.saturating_add(c);
    }
    total
}

/// Exhaustively minimise Equation 3 for every item independently.
/// Returns `None` when any item's candidate count exceeds
/// [`MAX_CANDIDATES`].
pub fn solve_exhaustive(ctx: &InstanceContext, params: &SelectParams) -> Option<Vec<Selection>> {
    let mut out = Vec::with_capacity(ctx.num_items());
    for i in 0..ctx.num_items() {
        out.push(solve_exhaustive_item(ctx, i, params)?);
    }
    Some(out)
}

/// Exhaustive per-item optimum of Equation 3 (single item `i`).
pub fn solve_exhaustive_item(
    ctx: &InstanceContext,
    i: usize,
    params: &SelectParams,
) -> Option<Selection> {
    let n = ctx.item(i).num_reviews();
    let m = params.m.min(n);
    if candidate_count(n, m) > MAX_CANDIDATES {
        return None;
    }
    let mut best: Option<(f64, Selection)> = None;
    let consider = |indices: &[usize], best: &mut Option<(f64, Selection)>| {
        let sel = Selection::new(indices.to_vec());
        let cost = item_objective(ctx, i, &sel, params.lambda);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            *best = Some((cost, sel));
        }
    };
    // Enumerate subsets of each size 1..=m with a classic index-vector
    // combination walk (the empty set is only competitive when every
    // review hurts, which cannot happen for non-negative targets, but we
    // include it for mathematical completeness).
    consider(&[], &mut best);
    let mut indices: Vec<usize> = Vec::new();
    for size in 1..=m {
        indices.clear();
        indices.extend(0..size);
        loop {
            consider(&indices, &mut best);
            // Advance the combination.
            let mut pos = size;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                if indices[pos] < n - (size - pos) {
                    indices[pos] += 1;
                    for k in (pos + 1)..size {
                        indices[k] = indices[k - 1] + 1;
                    }
                    break;
                }
                if pos == 0 {
                    pos = usize::MAX;
                    break;
                }
            }
            if pos == usize::MAX {
                break;
            }
        }
    }
    best.map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparesets::solve_comparesets;
    use crate::instance::InstanceContext;
    use crate::space::OpinionScheme;
    use comparesets_data::CategoryPreset;

    fn params(m: usize) -> SelectParams {
        SelectParams {
            m,
            lambda: 1.0,
            mu: 0.0,
        }
    }

    #[test]
    fn candidate_counts() {
        assert_eq!(candidate_count(4, 2), 1 + 4 + 6);
        assert_eq!(candidate_count(5, 0), 1);
        assert_eq!(candidate_count(3, 5), 8); // all subsets
        assert!(candidate_count(100, 50) > MAX_CANDIDATES);
    }

    #[test]
    fn exhaustive_finds_the_working_example_optimum() {
        let item = crate::space::fixtures::working_example_item();
        let ctx = InstanceContext::from_items(5, vec![item], OpinionScheme::Binary);
        let sel = solve_exhaustive_item(&ctx, 0, &params(3)).unwrap();
        let cost = item_objective(&ctx, 0, &sel, 1.0);
        // The paper names {r5,r6,r7}; the instance admits several
        // zero-cost optima (e.g. {r2,r5,r7}) — any is acceptable.
        assert!(cost < 1e-12, "cost {cost} sel {sel:?}");
        assert_eq!(sel.len(), 3);
    }

    #[test]
    fn integer_regression_never_beats_the_oracle() {
        let d = CategoryPreset::Cellphone.config(60, 5).generate();
        let p = params(2);
        let mut checked = 0;
        for inst in d.instances().into_iter().take(6) {
            let inst = inst.truncated(2);
            let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
            let Some(oracle) = solve_exhaustive(&ctx, &p) else {
                continue;
            };
            let approx = solve_comparesets(&ctx, &p);
            for i in 0..ctx.num_items() {
                let oc = item_objective(&ctx, i, &oracle[i], p.lambda);
                let ac = item_objective(&ctx, i, &approx[i], p.lambda);
                assert!(ac >= oc - 1e-9, "approx {ac} below oracle {oc} on item {i}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no instance was small enough to check");
    }

    #[test]
    fn refuses_oversized_enumeration() {
        // Build a context whose item has many reviews, then ask for a huge m.
        let d = CategoryPreset::Toy.config(60, 9).generate();
        let inst = d
            .instances()
            .into_iter()
            .find(|i| i.items.iter().any(|&p| d.reviews_of(p).len() >= 40));
        if let Some(inst) = inst {
            let ctx = InstanceContext::build(&d, &inst.truncated(1), OpinionScheme::Binary);
            let big = SelectParams {
                m: 20,
                lambda: 1.0,
                mu: 0.0,
            };
            // Either some item is too large (None) or all are small enough —
            // both acceptable; just must not hang or panic.
            let _ = solve_exhaustive(&ctx, &big);
        }
    }

    #[test]
    fn oracle_selection_respects_budget() {
        let item = crate::space::fixtures::working_example_item();
        let ctx = InstanceContext::from_items(5, vec![item], OpinionScheme::Binary);
        for m in 1..=4 {
            let sel = solve_exhaustive_item(&ctx, 0, &params(m)).unwrap();
            assert!(sel.len() <= m);
        }
    }
}
