//! Problem-instance preparation.
//!
//! The solvers operate on a compact, dataset-independent view of one
//! comparison instance: every item carries its reviews as
//! [`ReviewFeature`]s (deduplicated `(aspect, polarity)` mentions), and
//! [`InstanceContext`] precomputes the optimisation targets —
//! `τᵢ = π(ℛᵢ)` per item and `Γ = φ(ℛ₁)` from the target item (§4.1.4).

use comparesets_data::{ComparisonInstance, Dataset, Polarity, ProductId, ReviewId};

use crate::space::{OpinionScheme, VectorSpace};

/// The annotations of one review, reduced to what the selection algorithms
/// consume: a sorted, deduplicated list of `(aspect index, polarity)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReviewFeature {
    /// Sorted, deduplicated aspect mentions.
    pub mentions: Vec<(usize, Polarity)>,
}

impl ReviewFeature {
    /// Normalise raw mentions: sort and deduplicate.
    pub fn new(mut mentions: Vec<(usize, Polarity)>) -> Self {
        mentions.sort_by_key(|&(a, p)| (a, polarity_rank(p)));
        mentions.dedup();
        ReviewFeature { mentions }
    }
}

fn polarity_rank(p: Polarity) -> u8 {
    match p {
        Polarity::Positive => 0,
        Polarity::Negative => 1,
        Polarity::Neutral => 2,
    }
}

/// One item of an instance: a product with its candidate reviews.
#[derive(Debug, Clone)]
pub struct Item {
    /// The product this item represents.
    pub product: ProductId,
    /// The dataset review ids, parallel to `features`.
    pub review_ids: Vec<ReviewId>,
    /// Per-review annotation features.
    pub features: Vec<ReviewFeature>,
}

impl Item {
    /// Build an item directly from `(review id, mentions)` pairs — used by
    /// tests and synthetic micro-examples.
    pub fn from_mentions(
        product: ProductId,
        reviews: Vec<(ReviewId, Vec<(usize, Polarity)>)>,
    ) -> Self {
        let mut review_ids = Vec::with_capacity(reviews.len());
        let mut features = Vec::with_capacity(reviews.len());
        for (id, mentions) in reviews {
            review_ids.push(id);
            features.push(ReviewFeature::new(mentions));
        }
        Item {
            product,
            review_ids,
            features,
        }
    }

    /// Number of candidate reviews |ℛᵢ|.
    pub fn num_reviews(&self) -> usize {
        self.features.len()
    }
}

/// A selected review subset Sᵢ ⊆ ℛᵢ, as indices into the item's reviews.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    /// Sorted indices of selected reviews.
    pub indices: Vec<usize>,
}

impl Selection {
    /// A selection from (possibly unsorted) indices.
    pub fn new(mut indices: Vec<usize>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        Selection { indices }
    }

    /// Number of selected reviews |Sᵢ|.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no review is selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Map back to dataset review ids.
    pub fn review_ids(&self, item: &Item) -> Vec<ReviewId> {
        self.indices.iter().map(|&i| item.review_ids[i]).collect()
    }
}

/// A fully prepared problem instance: items plus optimisation targets.
#[derive(Debug, Clone)]
pub struct InstanceContext {
    space: VectorSpace,
    items: Vec<Item>,
    /// τᵢ = π(ℛᵢ) for every item.
    taus: Vec<Vec<f64>>,
    /// Γ = φ(ℛ₁), the target item's aspect distribution.
    gamma: Vec<f64>,
}

impl InstanceContext {
    /// Prepare an instance from a dataset. `instance.items[0]` is the
    /// target item; all items must have at least one review.
    pub fn build(dataset: &Dataset, instance: &ComparisonInstance, scheme: OpinionScheme) -> Self {
        let items: Vec<Item> = instance
            .items
            .iter()
            .map(|&pid| {
                let review_ids = dataset.reviews_of(pid).to_vec();
                let features = review_ids
                    .iter()
                    .map(|&rid| {
                        let r = dataset.review(rid);
                        ReviewFeature::new(
                            r.mentions
                                .iter()
                                .map(|m| (m.aspect.0 as usize, m.polarity))
                                .collect(),
                        )
                    })
                    .collect();
                Item {
                    product: pid,
                    review_ids,
                    features,
                }
            })
            .collect();
        Self::from_items(dataset.num_aspects(), items, scheme)
    }

    /// Prepare an instance from already-built items (first = target).
    ///
    /// # Panics
    /// Panics when `items` is empty.
    pub fn from_items(z: usize, items: Vec<Item>, scheme: OpinionScheme) -> Self {
        assert!(!items.is_empty(), "an instance needs a target item");
        let space = VectorSpace::new(z, scheme);
        let taus = items
            .iter()
            .map(|item| {
                let all: Vec<usize> = (0..item.num_reviews()).collect();
                space.pi(item, &all)
            })
            .collect();
        let all0: Vec<usize> = (0..items[0].num_reviews()).collect();
        let gamma = space.phi(&items[0], &all0);
        InstanceContext {
            space,
            items,
            taus,
            gamma,
        }
    }

    /// Prepare an instance with *caller-supplied* optimisation targets —
    /// the extension point for learned aspect-level preference vectors
    /// (§4.2.3's future-work suggestion, implemented by the
    /// `comparesets-efm` crate): `taus[i]` replaces π(ℛᵢ) and `gamma`
    /// replaces φ(ℛ₁).
    ///
    /// # Panics
    /// Panics when `items` is empty, `taus` does not align with `items`,
    /// or any target has the wrong dimension for the scheme.
    pub fn with_targets(
        z: usize,
        items: Vec<Item>,
        scheme: OpinionScheme,
        taus: Vec<Vec<f64>>,
        gamma: Vec<f64>,
    ) -> Self {
        assert!(!items.is_empty(), "an instance needs a target item");
        assert_eq!(taus.len(), items.len(), "one tau per item");
        let space = VectorSpace::new(z, scheme);
        for tau in &taus {
            assert_eq!(tau.len(), space.opinion_dim(), "tau dimension");
        }
        assert_eq!(gamma.len(), z, "gamma dimension");
        InstanceContext {
            space,
            items,
            taus,
            gamma,
        }
    }

    /// The vector space (z + opinion scheme).
    pub fn space(&self) -> &VectorSpace {
        &self.space
    }

    /// All items; index 0 is the target.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Item `i`.
    pub fn item(&self, i: usize) -> &Item {
        &self.items[i]
    }

    /// Number of items n (target + comparatives).
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// τᵢ — the target opinion vector of item `i` (π over all reviews).
    pub fn tau(&self, i: usize) -> &[f64] {
        &self.taus[i]
    }

    /// Γ — the target aspect vector (φ over the target item's reviews).
    pub fn gamma(&self) -> &[f64] {
        &self.gamma
    }

    /// Append a review and refresh the derived targets (used by the
    /// incremental-session API in [`crate::incremental`]).
    pub(crate) fn push_review_internal(&mut self, i: usize, id: ReviewId, feature: ReviewFeature) {
        self.items[i].review_ids.push(id);
        self.items[i].features.push(feature);
        self.refresh_targets(i);
    }

    /// Replace the feature of the review at position `pos` of item `i`
    /// and refresh the derived targets.
    pub(crate) fn edit_review_internal(&mut self, i: usize, pos: usize, feature: ReviewFeature) {
        self.items[i].features[pos] = feature;
        self.refresh_targets(i);
    }

    /// Remove the review at position `pos` of item `i` (shifting later
    /// positions down by one) and refresh the derived targets.
    pub(crate) fn remove_review_internal(&mut self, i: usize, pos: usize) {
        self.items[i].review_ids.remove(pos);
        self.items[i].features.remove(pos);
        self.refresh_targets(i);
    }

    /// Recompute τᵢ (and Γ when the target item changed).
    fn refresh_targets(&mut self, i: usize) {
        let all: Vec<usize> = (0..self.items[i].num_reviews()).collect();
        self.taus[i] = self.space.pi(&self.items[i], &all);
        if i == 0 {
            self.gamma = self.space.phi(&self.items[0], &all);
        }
    }

    /// Position of dataset review `id` within item `i`, if present.
    pub fn position_of(&self, i: usize, id: ReviewId) -> Option<usize> {
        self.items[i].review_ids.iter().position(|&r| r == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comparesets_data::CategoryPreset;

    #[test]
    fn review_feature_sorts_and_dedups() {
        let f = ReviewFeature::new(vec![
            (3, Polarity::Negative),
            (1, Polarity::Positive),
            (3, Polarity::Negative),
            (1, Polarity::Negative),
        ]);
        assert_eq!(
            f.mentions,
            vec![
                (1, Polarity::Positive),
                (1, Polarity::Negative),
                (3, Polarity::Negative)
            ]
        );
    }

    #[test]
    fn selection_normalises() {
        let s = Selection::new(vec![4, 1, 4, 2]);
        assert_eq!(s.indices, vec![1, 2, 4]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Selection::default().is_empty());
    }

    #[test]
    fn build_from_dataset() {
        let d = CategoryPreset::Cellphone.config(60, 3).generate();
        let inst = d.instances().into_iter().next().unwrap().truncated(4);
        let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
        assert_eq!(ctx.num_items(), inst.len());
        assert_eq!(ctx.space().num_aspects(), d.num_aspects());
        // τ dimensions match the scheme.
        for i in 0..ctx.num_items() {
            assert_eq!(ctx.tau(i).len(), ctx.space().opinion_dim());
            assert!(ctx.item(i).num_reviews() >= 1);
        }
        assert_eq!(ctx.gamma().len(), d.num_aspects());
        // Γ is a max-normalised distribution: max entry is exactly 1.
        let max = ctx.gamma().iter().copied().fold(0.0_f64, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
    }

    #[test]
    fn selection_maps_to_review_ids() {
        let d = CategoryPreset::Toy.config(40, 5).generate();
        let inst = d.instances().into_iter().next().unwrap().truncated(2);
        let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
        let item = ctx.item(0);
        let sel = Selection::new(vec![0]);
        let ids = sel.review_ids(item);
        assert_eq!(ids, vec![item.review_ids[0]]);
        // Mapped ids really belong to the product.
        assert_eq!(d.review(ids[0]).product, item.product);
    }

    #[test]
    #[should_panic(expected = "target item")]
    fn empty_instance_panics() {
        let _ = InstanceContext::from_items(3, vec![], OpinionScheme::Binary);
    }
}
