//! Opinion schemes and the π/φ vector space.
//!
//! §2.1: `π(S) ∈ ℝ₊` is the opinion-distribution vector of a review set S
//! and `φ(S) ∈ ℝ₊ᶻ` its aspect-distribution vector. Working Example 1
//! fixes the normalisation: both vectors are divided by the **maximum
//! aspect frequency** within S (for `τ₁ = π(ℛ₁)` the denominator 6 is the
//! count of the most frequent aspect, *battery*).
//!
//! §4.2.3 generalises the opinion definition:
//! * **binary** (default) — π ∈ ℝ₊²ᶻ, one `+` and one `−` slot per aspect;
//! * **3-polarity** — π ∈ ℝ₊³ᶻ with an extra neutral slot;
//! * **unary-scale** — π ∈ ℝ₊ᶻ, the per-aspect aggregated sentiment mapped
//!   through a sigmoid `1/(1+e^{−s})`.

use comparesets_data::Polarity;

use crate::instance::{Item, ReviewFeature};

/// Opinion-vector definition (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpinionScheme {
    /// Positive/negative slots per aspect (the paper's default).
    Binary,
    /// Positive/negative/neutral slots per aspect.
    ThreePolarity,
    /// One slot per aspect holding `sigmoid(Σ sentiment)`.
    UnaryScale,
}

impl OpinionScheme {
    /// All schemes in the order of Table 4's columns.
    pub const ALL: [OpinionScheme; 3] = [
        OpinionScheme::Binary,
        OpinionScheme::ThreePolarity,
        OpinionScheme::UnaryScale,
    ];

    /// Name as printed in Table 4.
    pub fn name(self) -> &'static str {
        match self {
            OpinionScheme::Binary => "binary",
            OpinionScheme::ThreePolarity => "3-polarity",
            OpinionScheme::UnaryScale => "unary-scale",
        }
    }
}

/// Computes π and φ vectors over a fixed aspect universe of size `z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorSpace {
    z: usize,
    scheme: OpinionScheme,
}

/// Logistic sigmoid used by the unary-scale aggregation.
#[inline]
pub(crate) fn sigmoid(s: f64) -> f64 {
    1.0 / (1.0 + (-s).exp())
}

impl VectorSpace {
    /// A vector space over `z` aspects with the given opinion scheme.
    pub fn new(z: usize, scheme: OpinionScheme) -> Self {
        VectorSpace { z, scheme }
    }

    /// Number of aspects z.
    pub fn num_aspects(&self) -> usize {
        self.z
    }

    /// The active opinion scheme.
    pub fn scheme(&self) -> OpinionScheme {
        self.scheme
    }

    /// Dimension of π vectors (2z / 3z / z by scheme).
    pub fn opinion_dim(&self) -> usize {
        match self.scheme {
            OpinionScheme::Binary => 2 * self.z,
            OpinionScheme::ThreePolarity => 3 * self.z,
            OpinionScheme::UnaryScale => self.z,
        }
    }

    /// Slot of `(aspect, polarity)` within the opinion vector, or `None`
    /// when the scheme has no slot for that polarity (binary ignores
    /// neutral mentions).
    pub fn opinion_slot(&self, aspect: usize, polarity: Polarity) -> Option<usize> {
        debug_assert!(aspect < self.z);
        match self.scheme {
            OpinionScheme::Binary => match polarity {
                Polarity::Positive => Some(2 * aspect),
                Polarity::Negative => Some(2 * aspect + 1),
                Polarity::Neutral => None,
            },
            OpinionScheme::ThreePolarity => Some(
                3 * aspect
                    + match polarity {
                        Polarity::Positive => 0,
                        Polarity::Negative => 1,
                        Polarity::Neutral => 2,
                    },
            ),
            OpinionScheme::UnaryScale => Some(aspect),
        }
    }

    /// Raw per-aspect frequency counts over the selected reviews of `item`.
    pub fn aspect_counts(&self, item: &Item, selected: &[usize]) -> Vec<f64> {
        let mut counts = vec![0.0; self.z];
        for &ri in selected {
            for &(a, _) in &item.features[ri].mentions {
                counts[a] += 1.0;
            }
        }
        counts
    }

    /// Aspect-distribution vector φ(S): aspect frequencies divided by the
    /// maximum aspect frequency (Working Example 1). All-zero when S
    /// mentions nothing.
    pub fn phi(&self, item: &Item, selected: &[usize]) -> Vec<f64> {
        let mut counts = self.aspect_counts(item, selected);
        normalize_by_max(&mut counts);
        counts
    }

    /// Opinion-distribution vector π(S) under the active scheme.
    pub fn pi(&self, item: &Item, selected: &[usize]) -> Vec<f64> {
        match self.scheme {
            OpinionScheme::Binary | OpinionScheme::ThreePolarity => {
                let mut v = vec![0.0; self.opinion_dim()];
                for &ri in selected {
                    for &(a, pol) in &item.features[ri].mentions {
                        if let Some(slot) = self.opinion_slot(a, pol) {
                            v[slot] += 1.0;
                        }
                    }
                }
                // Normalise by the maximum *aspect* frequency, per Working
                // Example 1 ("the denominator 6 is the maximum occurrences
                // of aspects").
                let counts = self.aspect_counts(item, selected);
                let max = counts.iter().copied().fold(0.0_f64, f64::max);
                if max > 0.0 {
                    for x in &mut v {
                        *x /= max;
                    }
                }
                v
            }
            OpinionScheme::UnaryScale => {
                let mut sums = vec![0.0; self.z];
                let mut mentioned = vec![false; self.z];
                for &ri in selected {
                    for &(a, pol) in &item.features[ri].mentions {
                        sums[a] += pol.score();
                        mentioned[a] = true;
                    }
                }
                // σ(Σ sentiment) per mentioned aspect; unmentioned aspects
                // stay at 0 so sparse vectors remain comparable.
                sums.iter()
                    .zip(mentioned.iter())
                    .map(|(&s, &m)| if m { sigmoid(s) } else { 0.0 })
                    .collect()
            }
        }
    }

    /// The opinion-block column of the design matrix for one review:
    /// indicator (or signed score, for unary-scale) of each opinion slot.
    pub fn opinion_column(&self, feature: &ReviewFeature) -> Vec<f64> {
        let mut col = vec![0.0; self.opinion_dim()];
        match self.scheme {
            OpinionScheme::Binary | OpinionScheme::ThreePolarity => {
                for &(a, pol) in &feature.mentions {
                    if let Some(slot) = self.opinion_slot(a, pol) {
                        col[slot] = 1.0;
                    }
                }
            }
            OpinionScheme::UnaryScale => {
                // Linear surrogate: the signed sentiment contribution. The
                // sigmoid is applied only in vector evaluation, which is
                // exactly why integer regression degrades on this scheme
                // (Table 4 shows Crs dropping below Random).
                for &(a, pol) in &feature.mentions {
                    col[a] += pol.score();
                }
            }
        }
        col
    }

    /// The aspect-block column of the design matrix for one review:
    /// indicator of each aspect mentioned.
    pub fn aspect_column(&self, feature: &ReviewFeature) -> Vec<f64> {
        let mut col = vec![0.0; self.z];
        for &(a, _) in &feature.mentions {
            col[a] = 1.0;
        }
        col
    }
}

/// Divide by the max element when positive.
fn normalize_by_max(v: &mut [f64]) {
    let max = v.iter().copied().fold(0.0_f64, f64::max);
    if max > 0.0 {
        for x in v.iter_mut() {
            *x /= max;
        }
    }
}

/// Test fixtures shared across the crate's unit tests.
#[cfg(test)]
pub(crate) mod fixtures {
    use crate::instance::Item;
    use comparesets_data::{Polarity, ProductId, ReviewId};

    /// Build the ℛ₁ of Working Example 1 (Figure 2a):
    /// aspects {battery=0, lens=1, quality=2, price=3, shuttle=4};
    /// 7 reviews with opinions:
    /// r1..r4: battery+ ... — reconstructed to match the stated totals:
    /// battery appears 6×(2+,4−), lens 4×(2+,2−), quality 4×(2+,2−).
    /// r5,r6,r7 = the optimal subset with π = (1/3,2/3,1/3,0,1/3,0,…)·?
    ///
    /// We reproduce the *vectors* the paper states: τ₁ and Γ for the full
    /// set, and identical (up to scale) π/φ for {r5,r6,r7}.
    pub(crate) fn working_example_item() -> Item {
        use Polarity::{Negative, Positive};
        // Chosen so that totals are battery 6 (2+,4−), lens 4 (2+,2−),
        // quality 4 (2+,2−), and both {r5,r6,r7} (m=3) and {r1..r4} (m≥4)
        // reproduce τ₁ and Γ exactly, as the paper's Working Example 2
        // requires.
        let reviews = vec![
            vec![(0, Positive), (1, Positive)],                // r1
            vec![(0, Negative), (1, Negative)],                // r2
            vec![(0, Negative), (2, Positive)],                // r3
            vec![(2, Negative)],                               // r4
            vec![(0, Positive), (1, Positive), (2, Positive)], // r5
            vec![(0, Negative), (1, Negative)],                // r6
            vec![(0, Negative), (2, Negative)],                // r7
        ];
        Item::from_mentions(
            ProductId(0),
            reviews
                .into_iter()
                .enumerate()
                .map(|(i, ms)| (ReviewId(i as u32), ms))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::working_example_item;
    use super::*;
    use crate::instance::Item;
    use comparesets_data::{Polarity, ProductId, ReviewId};

    #[test]
    fn dimensions_by_scheme() {
        assert_eq!(VectorSpace::new(5, OpinionScheme::Binary).opinion_dim(), 10);
        assert_eq!(
            VectorSpace::new(5, OpinionScheme::ThreePolarity).opinion_dim(),
            15
        );
        assert_eq!(
            VectorSpace::new(5, OpinionScheme::UnaryScale).opinion_dim(),
            5
        );
    }

    #[test]
    fn working_example_full_set_vectors() {
        let item = working_example_item();
        let space = VectorSpace::new(5, OpinionScheme::Binary);
        let all: Vec<usize> = (0..7).collect();

        // Γ = φ(ℛ₁) = (6/6, 4/6, 4/6, 0, 0).
        let phi = space.phi(&item, &all);
        let expect_phi = [1.0, 4.0 / 6.0, 4.0 / 6.0, 0.0, 0.0];
        for (a, b) in phi.iter().zip(expect_phi.iter()) {
            assert!((a - b).abs() < 1e-12, "phi {phi:?}");
        }

        // τ₁ = π(ℛ₁) = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6, 0, 0, 0, 0).
        let pi = space.pi(&item, &all);
        let expect_pi = [
            2.0 / 6.0,
            4.0 / 6.0,
            2.0 / 6.0,
            2.0 / 6.0,
            2.0 / 6.0,
            2.0 / 6.0,
            0.0,
            0.0,
            0.0,
            0.0,
        ];
        for (a, b) in pi.iter().zip(expect_pi.iter()) {
            assert!((a - b).abs() < 1e-12, "pi {pi:?}");
        }
    }

    #[test]
    fn working_example_optimal_subset_matches_targets() {
        let item = working_example_item();
        let space = VectorSpace::new(5, OpinionScheme::Binary);
        let all: Vec<usize> = (0..7).collect();
        let subset = [4usize, 5, 6]; // {r5, r6, r7}

        // π(S₁) ≡ τ₁ and φ(S₁) ≡ Γ (identical distributions).
        let tau = space.pi(&item, &all);
        let gamma = space.phi(&item, &all);
        let pi_s = space.pi(&item, &subset);
        let phi_s = space.phi(&item, &subset);
        for (a, b) in pi_s.iter().zip(tau.iter()) {
            assert!((a - b).abs() < 1e-12, "pi_s {pi_s:?} tau {tau:?}");
        }
        for (a, b) in phi_s.iter().zip(gamma.iter()) {
            assert!((a - b).abs() < 1e-12, "phi_s {phi_s:?} gamma {gamma:?}");
        }
    }

    #[test]
    fn empty_selection_gives_zero_vectors() {
        let item = working_example_item();
        let space = VectorSpace::new(5, OpinionScheme::Binary);
        assert!(space.pi(&item, &[]).iter().all(|&v| v == 0.0));
        assert!(space.phi(&item, &[]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn three_polarity_counts_neutral() {
        let item = Item::from_mentions(
            ProductId(0),
            vec![(ReviewId(0), vec![(0, Polarity::Neutral)])],
        );
        let space3 = VectorSpace::new(2, OpinionScheme::ThreePolarity);
        let pi = space3.pi(&item, &[0]);
        assert_eq!(pi, vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        // Binary ignores the neutral mention, but φ still counts the aspect.
        let space2 = VectorSpace::new(2, OpinionScheme::Binary);
        assert!(space2.pi(&item, &[0]).iter().all(|&v| v == 0.0));
        assert_eq!(space2.phi(&item, &[0]), vec![1.0, 0.0]);
    }

    #[test]
    fn unary_scale_applies_sigmoid() {
        let item = Item::from_mentions(
            ProductId(0),
            vec![
                (ReviewId(0), vec![(0, Polarity::Positive)]),
                (
                    ReviewId(1),
                    vec![(0, Polarity::Positive), (1, Polarity::Negative)],
                ),
            ],
        );
        let space = VectorSpace::new(2, OpinionScheme::UnaryScale);
        let pi = space.pi(&item, &[0, 1]);
        assert!((pi[0] - sigmoid(2.0)).abs() < 1e-12);
        assert!((pi[1] - sigmoid(-1.0)).abs() < 1e-12);
        // Unmentioned aspect stays 0, not sigmoid(0)=0.5.
        let pi_one = space.pi(&item, &[0]);
        assert_eq!(pi_one[1], 0.0);
    }

    #[test]
    fn opinion_columns_by_scheme() {
        let f = ReviewFeature {
            mentions: vec![(0, Polarity::Positive), (1, Polarity::Negative)],
        };
        let b = VectorSpace::new(2, OpinionScheme::Binary);
        assert_eq!(b.opinion_column(&f), vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(b.aspect_column(&f), vec![1.0, 1.0]);
        let u = VectorSpace::new(2, OpinionScheme::UnaryScale);
        assert_eq!(u.opinion_column(&f), vec![1.0, -1.0]);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(OpinionScheme::Binary.name(), "binary");
        assert_eq!(OpinionScheme::ThreePolarity.name(), "3-polarity");
        assert_eq!(OpinionScheme::UnaryScale.name(), "unary-scale");
    }
}
