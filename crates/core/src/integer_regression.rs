//! The Integer-Regression machinery (§2.2, Algorithm 1).
//!
//! Strategy, following Lappas et al. (KDD'12) as generalised by the paper.
//! Each numbered step names the Algorithm 1 lines it implements and the
//! knob that controls it:
//!
//! 1. Build a design matrix `V` with one column per candidate review —
//!    an opinion-indicator block stacked on weighted aspect-indicator
//!    blocks (λ for the Γ block, μ for every other item's φ(Sⱼ) block).
//!    [`RegressionTask::build`] takes the blocks as `(vector, weight)`
//!    pairs, so the same builder serves CRS (no aspect blocks),
//!    CompaReSetS (`[(Γ, λ)]`, Equation 4) and CompaReSetS+
//!    (`[(Γ, λ), (φ(Sⱼ), μ), …]`).
//! 2. Deduplicate identical columns (line 5, [`DedupColumns`]); `cᵢ` caps
//!    how many copies of a deduplicated column may be selected.
//! 3. For every sparsity budget ℓ = 1…m (line 7, the `m` argument of
//!    [`integer_regression`]), solve the continuous relaxation with NOMP —
//!    realised as **one** shared pursuit whose per-ℓ snapshots are
//!    bit-identical to standalone runs (`comparesets_linalg::nomp_path`) —
//!    then round the normalised solution to the closest integer selection
//!    `ν` with `νᵢ ≤ cᵢ`, `‖ν‖₁ ≤ m` (line 8) using largest-remainder
//!    rounding over every total mass `s ≤ m`.
//! 4. Keep the candidate minimising the *true* objective (lines 10–12),
//!    evaluated by a caller-supplied closure so CRS, CompaReSetS, and
//!    CompaReSetS+ can share this machinery with their own objectives.
//!
//! ```
//! use comparesets_core::{integer_regression, RegressionTask};
//! use comparesets_core::instance::Item;
//! use comparesets_core::space::{OpinionScheme, VectorSpace};
//! use comparesets_data::{Polarity, ProductId, ReviewId};
//! use comparesets_linalg::vector::sq_distance;
//!
//! // Three reviews over two aspects; τ/Γ are the full-set profiles.
//! let item = Item::from_mentions(
//!     ProductId(0),
//!     vec![
//!         (ReviewId(0), vec![(0, Polarity::Positive)]),
//!         (ReviewId(1), vec![(1, Polarity::Negative)]),
//!         (ReviewId(2), vec![(0, Polarity::Positive), (1, Polarity::Negative)]),
//!     ],
//! );
//! let space = VectorSpace::new(2, OpinionScheme::Binary);
//! let all: Vec<usize> = (0..3).collect();
//! let (tau, gamma) = (space.pi(&item, &all), space.phi(&item, &all));
//!
//! let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 1.0)]);
//! let sel = integer_regression(&task, 2, |s| {
//!     sq_distance(&tau, &space.pi(&item, &s.indices))
//!         + sq_distance(&gamma, &space.phi(&item, &s.indices))
//! });
//! assert!(!sel.is_empty() && sel.len() <= 2);
//! ```

use comparesets_linalg::{
    nomp_path_ctl, nomp_path_warm, CscMatrix, DesignMatrix, LinalgError, Matrix, NompOptions,
    NompWorkspace, SolveError, WarmState,
};
use comparesets_obs::{SolveCtl, SolverMetrics};

use crate::error::CoreError;
use crate::instance::{Item, ReviewFeature, Selection};
use crate::space::VectorSpace;

/// Deduplicated design-matrix columns for one item.
#[derive(Debug, Clone)]
pub struct DedupColumns {
    /// For each group: the indices of the item's reviews sharing one
    /// column signature.
    pub groups: Vec<Vec<usize>>,
}

impl DedupColumns {
    /// Group the reviews of an item by identical annotation signatures.
    /// (Columns are functions of the `ReviewFeature` alone, so equal
    /// features ⇔ equal design columns for any block weights.)
    pub fn build(item: &Item) -> Self {
        let mut index: std::collections::HashMap<&crate::instance::ReviewFeature, usize> =
            std::collections::HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (ri, f) in item.features.iter().enumerate() {
            match index.get(f) {
                Some(&g) => groups[g].push(ri),
                None => {
                    index.insert(f, groups.len());
                    groups.push(vec![ri]);
                }
            }
        }
        DedupColumns { groups }
    }

    /// Number of deduplicated columns q.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the item has no reviews.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Multiplicity cap cᵢ of each group.
    pub fn caps(&self) -> Vec<usize> {
        self.groups.iter().map(Vec::len).collect()
    }

    /// Expand an integer group-count vector ν̃ into concrete review
    /// indices (Algorithm 1 line 9): the first `ν̃_g` members of group g.
    pub fn expand(&self, nu: &[usize]) -> Selection {
        debug_assert_eq!(nu.len(), self.groups.len());
        let mut indices = Vec::new();
        for (g, &count) in nu.iter().enumerate() {
            let take = count.min(self.groups[g].len());
            indices.extend_from_slice(&self.groups[g][..take]);
        }
        Selection::new(indices)
    }
}

/// Storage backend for the regression design matrix.
///
/// Every backend produces **byte-identical selections**: the NOMP kernels
/// are bit-exact across representations (skipped zero entries are exact
/// no-ops under a `+0.0`-seeded accumulator), so the choice is purely a
/// time/space decision. `Auto` (the default) picks per task by stored
/// density — CSC below [`DENSITY_CROSSOVER`], dense at or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixBackend {
    /// Choose per task by the density of the assembled columns.
    #[default]
    Auto,
    /// Always materialise the dense row-major matrix.
    Dense,
    /// Always build compressed sparse columns.
    Sparse,
}

/// Density (`nnz / rows·cols`) at or above which [`MatrixBackend::Auto`]
/// materialises the design matrix densely.
///
/// Measured on the `regression_engine/sparse/crossover` bench family
/// (4 000×64 budget-path pursuits swept over stored density, committed
/// in `BENCH_sparse.json`): the sparse backend's per-iteration advantage
/// — correlation scans and Gram builds walk only stored entries — decays
/// from ~5× at 5% density to parity at ~65%, where the dense kernels'
/// contiguous 4-lane chunking catches up (see PERFORMANCE.md). Memory
/// agrees: CSC stores 12 bytes per non-zero against dense's 8 bytes per
/// cell, so CSC is also the smaller representation below 2/3 density.
/// Paper-scale design matrices (z = 500 aspects, a handful of mentions
/// per review) sit around 1–2% density, far below the crossover.
pub const DENSITY_CROSSOVER: f64 = 0.65;

/// The design matrix of a [`RegressionTask`], in whichever storage the
/// [`MatrixBackend`] chose. Implements [`DesignMatrix`] by delegation, so
/// the NOMP engine runs on it directly — no copies, no dispatch above the
/// kernel level.
#[derive(Debug, Clone)]
pub enum TaskMatrix {
    /// Compressed sparse columns (the low-density hot path).
    Sparse(CscMatrix),
    /// Dense row-major storage (the high-density fallback).
    Dense(Matrix),
}

impl TaskMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            TaskMatrix::Sparse(m) => m.rows(),
            TaskMatrix::Dense(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            TaskMatrix::Sparse(m) => m.cols(),
            TaskMatrix::Dense(m) => m.cols(),
        }
    }

    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            TaskMatrix::Sparse(m) => m.get(i, j),
            TaskMatrix::Dense(m) => m[(i, j)],
        }
    }

    /// Whether this task holds the CSC representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, TaskMatrix::Sparse(_))
    }

    /// Resident bytes of the held representation (capacities, not
    /// lengths). Summed per shard by the serving daemon's `health` op.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            TaskMatrix::Sparse(m) => m.memory_bytes(),
            TaskMatrix::Dense(m) => m.memory_bytes(),
        }
    }
}

impl DesignMatrix for TaskMatrix {
    fn rows(&self) -> usize {
        TaskMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        TaskMatrix::cols(self)
    }
    fn column_into(&self, j: usize, out: &mut [f64]) {
        match self {
            TaskMatrix::Sparse(m) => m.column_into(j, out),
            TaskMatrix::Dense(m) => Matrix::column_into(m, j, out),
        }
    }
    fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        match self {
            TaskMatrix::Sparse(m) => DesignMatrix::matvec(m, x),
            TaskMatrix::Dense(m) => Matrix::matvec(m, x),
        }
    }
    fn tr_matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        match self {
            TaskMatrix::Sparse(m) => DesignMatrix::tr_matvec(m, x),
            TaskMatrix::Dense(m) => Matrix::tr_matvec(m, x),
        }
    }
    fn dense_columns(&self, indices: &[usize]) -> Matrix {
        match self {
            TaskMatrix::Sparse(m) => m.dense_columns(indices),
            TaskMatrix::Dense(m) => m.dense_columns(indices),
        }
    }
    fn column_dot(&self, i: usize, j: usize) -> f64 {
        match self {
            TaskMatrix::Sparse(m) => m.column_dot(i, j),
            TaskMatrix::Dense(m) => m.column_dot(i, j),
        }
    }
    fn column_dot_vec(&self, j: usize, v: &[f64]) -> f64 {
        match self {
            TaskMatrix::Sparse(m) => m.column_dot_vec(j, v),
            TaskMatrix::Dense(m) => m.column_dot_vec(j, v),
        }
    }
    fn is_sparse(&self) -> bool {
        TaskMatrix::is_sparse(self)
    }
    fn tr_scan_simd_blocks(&self, x: &[f64]) -> u64 {
        match self {
            TaskMatrix::Sparse(m) => m.tr_scan_simd_blocks(x),
            TaskMatrix::Dense(m) => m.tr_scan_simd_blocks(x),
        }
    }
}

/// A prepared regression task: deduplicated design matrix plus target.
///
/// The matrix is held behind [`TaskMatrix`], CSC by default at paper
/// scale: with z = 500 aspects the CompaReSetS+ design matrix has
/// `2z + n·z` ≈ 15 000+ rows per item while each review column touches
/// only a handful — sparsity is what keeps Integer-Regression fast at
/// real-corpus scale. Dense-ish tasks (stored density at or above
/// [`DENSITY_CROSSOVER`]) materialise densely under
/// [`MatrixBackend::Auto`] so the chunked dense kernels take over.
#[derive(Debug, Clone)]
pub struct RegressionTask {
    /// Deduplicated design matrix Ṽ (rows = blocks, cols = groups).
    pub matrix: TaskMatrix,
    /// Target vector Υ, pre-weighted to match the matrix blocks.
    pub target: Vec<f64>,
    /// Column groups / caps.
    pub dedup: DedupColumns,
}

impl RegressionTask {
    /// Build the task for one item.
    ///
    /// `target_blocks` are `(vector, weight)` pairs: the first must be the
    /// opinion target τᵢ with weight 1; every following block is an
    /// aspect-space target (Γ or some φ(Sⱼ)) with its coefficient (λ or
    /// μ). The matrix mirrors the blocks: the opinion-column block then
    /// one `weight × aspect-indicator` block per aspect target.
    ///
    /// # Panics
    /// Panics when blocks have wrong dimensions. Use
    /// [`RegressionTask::try_build`] for a fallible variant.
    pub fn build(
        space: &VectorSpace,
        item: &Item,
        opinion_target: &[f64],
        aspect_targets: &[(&[f64], f64)],
    ) -> Self {
        Self::build_with(
            space,
            item,
            opinion_target,
            aspect_targets,
            MatrixBackend::Auto,
        )
    }

    /// [`RegressionTask::build`] with an explicit [`MatrixBackend`].
    ///
    /// # Panics
    /// As [`RegressionTask::build`].
    pub fn build_with(
        space: &VectorSpace,
        item: &Item,
        opinion_target: &[f64],
        aspect_targets: &[(&[f64], f64)],
        backend: MatrixBackend,
    ) -> Self {
        match Self::try_build_with(space, item, opinion_target, aspect_targets, backend) {
            Ok(task) => task,
            Err(e) => panic!("RegressionTask::build: {e}"),
        }
    }

    /// Fallible variant of [`RegressionTask::build`].
    ///
    /// # Errors
    /// [`CoreError::DimensionMismatch`] when the opinion target does not
    /// have the space's opinion dimension or an aspect target does not
    /// have the aspect dimension.
    pub fn try_build(
        space: &VectorSpace,
        item: &Item,
        opinion_target: &[f64],
        aspect_targets: &[(&[f64], f64)],
    ) -> Result<Self, CoreError> {
        Self::try_build_with(
            space,
            item,
            opinion_target,
            aspect_targets,
            MatrixBackend::Auto,
        )
    }

    /// [`RegressionTask::try_build`] with an explicit [`MatrixBackend`].
    ///
    /// The columns are always assembled as sparse `(row, value)` entry
    /// lists first — a dense matrix is only ever materialised after the
    /// backend decision, so low-density tasks never pay `O(rows·cols)`
    /// storage even transiently.
    ///
    /// # Errors
    /// As [`RegressionTask::try_build`].
    pub fn try_build_with(
        space: &VectorSpace,
        item: &Item,
        opinion_target: &[f64],
        aspect_targets: &[(&[f64], f64)],
        backend: MatrixBackend,
    ) -> Result<Self, CoreError> {
        let z = space.num_aspects();
        let od = space.opinion_dim();
        if opinion_target.len() != od {
            return Err(CoreError::DimensionMismatch {
                context: "RegressionTask opinion target",
                expected: od,
                actual: opinion_target.len(),
            });
        }
        for (t, _) in aspect_targets {
            if t.len() != z {
                return Err(CoreError::DimensionMismatch {
                    context: "RegressionTask aspect target",
                    expected: z,
                    actual: t.len(),
                });
            }
        }
        let dedup = DedupColumns::build(item);
        let rows = od + z * aspect_targets.len();
        // Build columns sparsely: only the mentioned opinion slots and the
        // mentioned aspects of each review are non-zero.
        let columns: Vec<Vec<(usize, f64)>> = dedup
            .groups
            .iter()
            .map(|group| column_entries(space, &item.features[group[0]], aspect_targets))
            .collect();
        let matrix = assemble_matrix(rows, &columns, backend)?;
        let mut target = Vec::with_capacity(rows);
        target.extend_from_slice(opinion_target);
        for &(t, w) in aspect_targets {
            target.extend(t.iter().map(|v| w * v));
        }
        Ok(RegressionTask {
            matrix,
            target,
            dedup,
        })
    }

    /// Stack the pre-weighted target vector Υ without building the design
    /// matrix — the cheap half of [`RegressionTask::try_build`] (the
    /// matrix costs `O(q·(od + z·blocks))`, the target only
    /// `O(od + z·blocks)`). Warm re-solve probes use this to test cache
    /// validity before paying for the matrix; the vector is bit-identical
    /// to the `target` field `try_build` would produce.
    ///
    /// # Errors
    /// [`CoreError::DimensionMismatch`] exactly as
    /// [`RegressionTask::try_build`] reports it for the target blocks.
    pub fn try_stack_target(
        space: &VectorSpace,
        opinion_target: &[f64],
        aspect_targets: &[(&[f64], f64)],
    ) -> Result<Vec<f64>, CoreError> {
        let z = space.num_aspects();
        let od = space.opinion_dim();
        if opinion_target.len() != od {
            return Err(CoreError::DimensionMismatch {
                context: "RegressionTask opinion target",
                expected: od,
                actual: opinion_target.len(),
            });
        }
        for (t, _) in aspect_targets {
            if t.len() != z {
                return Err(CoreError::DimensionMismatch {
                    context: "RegressionTask aspect target",
                    expected: z,
                    actual: t.len(),
                });
            }
        }
        let mut target = Vec::with_capacity(od + z * aspect_targets.len());
        target.extend_from_slice(opinion_target);
        for &(t, w) in aspect_targets {
            target.extend(t.iter().map(|v| w * v));
        }
        Ok(target)
    }
}

/// The sparse `(row, value)` entries of one design-matrix column: the
/// review's non-zero opinion slots, then its mentioned aspects weighted
/// per target block. Shared by the batch builder and the in-place column
/// growth of the warm-held matrix cache, so grown and rebuilt matrices
/// are entry-for-entry identical.
fn column_entries(
    space: &VectorSpace,
    f: &ReviewFeature,
    aspect_targets: &[(&[f64], f64)],
) -> Vec<(usize, f64)> {
    let z = space.num_aspects();
    let od = space.opinion_dim();
    let mut entries: Vec<(usize, f64)> = Vec::new();
    for (r, v) in space.opinion_column(f).into_iter().enumerate() {
        if v != 0.0 {
            entries.push((r, v));
        }
    }
    let asp = space.aspect_column(f);
    for (b, &(_, w)) in aspect_targets.iter().enumerate() {
        for (a, v) in asp.iter().enumerate() {
            if *v != 0.0 && w != 0.0 {
                entries.push((od + b * z + a, w * v));
            }
        }
    }
    entries
}

/// Materialise the backend's representation from sparse column entry
/// lists. `Auto` compares the stored density against
/// [`DENSITY_CROSSOVER`]; the dense path is only entered here, after the
/// decision, so sparse tasks never allocate `rows·cols` cells.
fn assemble_matrix(
    rows: usize,
    columns: &[Vec<(usize, f64)>],
    backend: MatrixBackend,
) -> Result<TaskMatrix, CoreError> {
    let sparse = match backend {
        MatrixBackend::Sparse => true,
        MatrixBackend::Dense => false,
        MatrixBackend::Auto => {
            let cells = rows * columns.len();
            // Column entries are zero-free by construction, so the entry
            // count is the stored nnz.
            let nnz: usize = columns.iter().map(Vec::len).sum();
            cells == 0 || (nnz as f64) < DENSITY_CROSSOVER * cells as f64
        }
    };
    if sparse {
        let matrix = CscMatrix::try_from_columns(rows, columns).map_err(classify_build_error)?;
        Ok(TaskMatrix::Sparse(matrix))
    } else {
        let mut m = Matrix::zeros(rows, columns.len());
        for (j, entries) in columns.iter().enumerate() {
            for &(r, v) in entries {
                if r >= rows {
                    return Err(CoreError::DimensionMismatch {
                        context: "RegressionTask design matrix rows",
                        expected: rows,
                        actual: r,
                    });
                }
                // `+=`, not `=`: duplicate rows sum, exactly as the CSC
                // normalisation does.
                m[(r, j)] += v;
            }
        }
        Ok(TaskMatrix::Dense(m))
    }
}

/// Map a CSC construction failure onto the core error taxonomy (same
/// classification the original monolithic builder used).
fn classify_build_error(e: SolveError) -> CoreError {
    match e {
        SolveError::DimensionMismatch {
            expected, actual, ..
        } => CoreError::DimensionMismatch {
            context: "RegressionTask design matrix rows",
            expected,
            actual,
        },
        other => CoreError::Solver {
            item: 0,
            source: other,
        },
    }
}

/// Largest-remainder rounding of `s · x̂` to integers under per-entry caps.
/// Returns `None` when `x̂` has no mass.
fn round_with_caps(x_hat: &[f64], s: usize, caps: &[usize]) -> Option<Vec<usize>> {
    let mass: f64 = x_hat.iter().sum();
    if mass <= 0.0 || s == 0 {
        return None;
    }
    let scaled: Vec<f64> = x_hat.iter().map(|v| v * s as f64 / mass).collect();
    let mut nu: Vec<usize> = scaled
        .iter()
        .zip(caps.iter())
        .map(|(&t, &c)| (t.floor() as usize).min(c))
        .collect();
    let mut assigned: usize = nu.iter().sum();
    if assigned < s {
        // Distribute the remainder by descending fractional part among
        // entries with spare cap.
        let mut order: Vec<usize> = (0..x_hat.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = scaled[a] - scaled[a].floor();
            let fb = scaled[b] - scaled[b].floor();
            fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
        });
        // Possibly several rounds if caps bind.
        'outer: loop {
            let mut progressed = false;
            for &i in &order {
                if assigned >= s {
                    break 'outer;
                }
                if nu[i] < caps[i] {
                    nu[i] += 1;
                    assigned += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // All caps saturated; ‖ν‖₁ < s is acceptable (≤ m).
            }
        }
    }
    if nu.iter().all(|&v| v == 0) {
        None
    } else {
        Some(nu)
    }
}

/// Run Integer-Regression for one item (Algorithm 1 lines 6–12).
///
/// `evaluate` must return the true objective of a candidate selection
/// (lower is better); the best candidate over all ℓ and rounding masses is
/// returned. When no non-trivial candidate emerges (e.g. the item's
/// reviews are entirely uncorrelated with the target), falls back to
/// selecting the single review minimising `evaluate`.
///
/// The ℓ-sweep of Algorithm 1 line 7 runs as **one** shared NOMP pursuit
/// ([`comparesets_linalg::nomp_path_with`]): the pursuit's state evolution is independent of
/// the budget, so the per-ℓ relaxations are snapshots of a single run
/// instead of `m` runs — identical solutions, ~`m×` less solver work.
pub fn integer_regression<F>(task: &RegressionTask, m: usize, evaluate: F) -> Selection
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_with(task, m, evaluate, &mut NompWorkspace::new())
}

/// [`integer_regression`] with caller-provided solver scratch.
///
/// Alternating solvers (CompaReSetS+ sweeps, incremental maintenance)
/// re-run Integer-Regression many times on same-shaped tasks; passing one
/// [`NompWorkspace`] through avoids re-allocating the pursuit buffers on
/// every call.
pub fn integer_regression_with<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
) -> Selection
where
    F: FnMut(&Selection) -> f64,
{
    // Non-strict mode never returns Err (a failed relaxation falls back to
    // the single-review sweep), so the default branch is unreachable.
    integer_regression_impl(
        task,
        m,
        &mut evaluate,
        workspace,
        None,
        false,
        SolveCtl::default(),
    )
    .unwrap_or_default()
}

/// [`integer_regression_with`] with an optional metrics collector: counts
/// the regression itself and everything its NOMP relaxation does. With
/// `None` this is exactly the unmetered path.
pub fn integer_regression_metered<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    metrics: Option<&SolverMetrics>,
) -> Selection
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(
        task,
        m,
        &mut evaluate,
        workspace,
        None,
        false,
        SolveCtl::metered(metrics),
    )
    .unwrap_or_default()
}

/// [`integer_regression_metered`] with a full [`SolveCtl`] handle: a
/// cancellation token (if present) is polled inside the NOMP relaxation.
/// A fired token collapses the relaxation to its entry state, so this
/// returns the cheap single-review fallback — still feasible, still
/// non-empty — instead of a refined selection. Without a token this is
/// exactly [`integer_regression_metered`].
pub fn integer_regression_ctl<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    ctl: SolveCtl<'_>,
) -> Selection
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(task, m, &mut evaluate, workspace, None, false, ctl).unwrap_or_default()
}

/// [`integer_regression`] that propagates solver failures instead of
/// silently degrading to the single-review fallback.
///
/// On well-posed inputs this returns exactly what [`integer_regression`]
/// returns; the two differ only when the continuous relaxation itself
/// fails (non-finite targets, injected faults), where the strict variant
/// reports the classified [`SolveError`] so batch drivers can isolate the
/// offending item.
///
/// # Errors
/// The [`SolveError`] the NOMP relaxation reported.
pub fn try_integer_regression<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
) -> Result<Selection, SolveError>
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(
        task,
        m,
        &mut evaluate,
        &mut NompWorkspace::new(),
        None,
        true,
        SolveCtl::default(),
    )
}

/// [`try_integer_regression`] with caller-provided solver scratch.
///
/// # Errors
/// As [`try_integer_regression`].
pub fn try_integer_regression_with<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
) -> Result<Selection, SolveError>
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(
        task,
        m,
        &mut evaluate,
        workspace,
        None,
        true,
        SolveCtl::default(),
    )
}

/// [`try_integer_regression_with`] with an optional metrics collector.
///
/// # Errors
/// As [`try_integer_regression`].
pub fn try_integer_regression_metered<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    metrics: Option<&SolverMetrics>,
) -> Result<Selection, SolveError>
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(
        task,
        m,
        &mut evaluate,
        workspace,
        None,
        true,
        SolveCtl::metered(metrics),
    )
}

/// [`try_integer_regression_metered`] with a full [`SolveCtl`] handle; see
/// [`integer_regression_ctl`] for the cancellation contract.
///
/// # Errors
/// As [`try_integer_regression`].
pub fn try_integer_regression_ctl<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    ctl: SolveCtl<'_>,
) -> Result<Selection, SolveError>
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(task, m, &mut evaluate, workspace, None, true, ctl)
}

/// The final answer of a previous warm regression, with the inputs it was
/// produced under. Valid only together with the warm state's own target
/// key: the selection may be returned verbatim when the budget, the caps,
/// *and* the relaxation's full trajectory all still apply.
#[derive(Debug, Clone)]
struct CachedSelection {
    m: usize,
    caps: Vec<usize>,
    selection: Selection,
}

/// Structural identity of a warm-held design matrix: everything the
/// matrix's entries are a function of. Two builds with equal keys produce
/// entry-for-entry identical matrices ([`column_entries`] is a pure
/// function of the space, the representative feature, and the block
/// weights), so a key match licenses reuse without touching a single
/// stored value — and the comparison is exact (cloned features, bitwise
/// weights), never a hash that could collide.
#[derive(Debug, Clone, PartialEq)]
struct MatrixKey {
    rows: usize,
    opinion_dim: usize,
    /// Aspect-block weights in block order, compared bitwise.
    weight_bits: Vec<u64>,
    /// One representative [`ReviewFeature`] per dedup group, in group
    /// order. Prefix-comparable: an append-only item keeps its old groups
    /// as a prefix, which is what licenses in-place column growth.
    reps: Vec<ReviewFeature>,
}

impl MatrixKey {
    fn build(
        space: &VectorSpace,
        item: &Item,
        dedup: &DedupColumns,
        aspect_targets: &[(&[f64], f64)],
    ) -> Self {
        MatrixKey {
            rows: space.opinion_dim() + space.num_aspects() * aspect_targets.len(),
            opinion_dim: space.opinion_dim(),
            weight_bits: aspect_targets.iter().map(|&(_, w)| w.to_bits()).collect(),
            reps: dedup
                .groups
                .iter()
                .map(|g| item.features[g[0]].clone())
                .collect(),
        }
    }

    /// Does `self` describe a strict column-prefix of `new`? True exactly
    /// when the cached matrix can grow to `new` by appending columns.
    fn is_prefix_of(&self, new: &MatrixKey) -> bool {
        self.rows == new.rows
            && self.opinion_dim == new.opinion_dim
            && self.weight_bits == new.weight_bits
            && self.reps.len() < new.reps.len()
            && self.reps[..] == new.reps[..self.reps.len()]
    }
}

/// Cross-round cache for one item's repeated integer regressions.
///
/// Wraps the linalg [`WarmState`] (the relaxation's trajectory cache) with
/// the rounding layer's answer, so a re-solve whose inputs are unchanged —
/// same design matrix, bit-equal target, same budget `m` and dedup caps —
/// skips not only the pursuit but the `O(m²)` rounding-and-evaluate sweep.
/// Alternating solvers hold one per item across sweeps; the state
/// revalidates itself against the matrix on every pursuit that actually
/// runs, while the full-skip fast path relies on the caller re-solving the
/// *same item* (the intended use — both CompaReSetS+ variants and the
/// incremental session thread exactly that).
///
/// The session entry points ([`integer_regression_session_ctl`]) also park
/// the item's [`TaskMatrix`] here between re-solves, validated by an exact
/// structural key: an unchanged item reuses the matrix outright, an
/// append-only item grows its CSC columns in place
/// ([`CscMatrix::try_push_column`]), and anything else rebuilds. This is
/// what lets alternating sweeps skip the `O(q·rows)` matrix assembly per
/// round and lets the serving daemon's session cache hold one resident CSC
/// instance per item (reported by [`RegressionWarm::matrix_bytes`]).
#[derive(Debug, Clone, Default)]
pub struct RegressionWarm {
    state: WarmState,
    cached: Option<CachedSelection>,
    matrix: Option<(MatrixKey, TaskMatrix)>,
}

impl RegressionWarm {
    /// An empty cache; fills on the first regression it is threaded into.
    pub fn new() -> Self {
        RegressionWarm::default()
    }

    /// Drop the trajectory and answer caches (see
    /// [`WarmState::invalidate`]); call when the item behind this cache
    /// changed. The parked design matrix survives: it is validated by an
    /// exact structural key on every session re-solve, so a stale matrix
    /// is grown in place (append-only change) or rebuilt (anything else)
    /// rather than trusted.
    pub fn invalidate(&mut self) {
        self.state.invalidate();
        self.cached = None;
    }

    /// Resident bytes of the parked design matrix; 0 when none is held.
    /// The serving daemon sums this over its session cache to report
    /// per-process resident matrix memory.
    pub fn matrix_bytes(&self) -> u64 {
        self.matrix.as_ref().map_or(0, |(_, m)| m.memory_bytes())
    }

    /// Matrix-free full-skip probe: when this cache holds the answer of a
    /// completed re-solve whose inputs are unchanged — bit-equal stacked
    /// target (see [`RegressionTask::try_stack_target`]), same budget
    /// `m`, same dedup caps — return it without building the design
    /// matrix, running the pursuit, or rounding anything.
    ///
    /// `dedup` must be the item's current column grouping
    /// ([`DedupColumns::build`]); callers solving the same immutable item
    /// repeatedly (the alternating sweeps) build it once and reuse it.
    ///
    /// This is the same decision [`integer_regression_warm_ctl`] makes
    /// internally, hoisted in front of the `O(q·rows)` matrix
    /// construction so alternating solvers can skip task assembly on
    /// stabilised rounds. Counters are recorded exactly as the in-engine
    /// fast path records them, so the metrics identities hold whichever
    /// path serves the reuse.
    pub fn probe_reuse(
        &self,
        dedup: &DedupColumns,
        target: &[f64],
        m: usize,
        metrics: Option<&SolverMetrics>,
    ) -> Option<Selection> {
        let cached = self.cached.as_ref()?;
        if cached.m != m || m == 0 {
            return None;
        }
        let q = dedup.len();
        if q == 0
            || cached.caps.len() != q
            || !cached
                .caps
                .iter()
                .zip(dedup.groups.iter())
                .all(|(&c, g)| c == g.len())
        {
            return None;
        }
        let opts = NompOptions::with_max_atoms(m.min(q));
        if !self.state.full_reuse_ready(target, opts) {
            return None;
        }
        if let Some(mm) = metrics {
            SolverMetrics::incr(&mm.integer_regressions);
        }
        self.state.record_full_reuse(metrics);
        Some(cached.selection.clone())
    }
}

/// [`integer_regression_ctl`] with a [`RegressionWarm`] cache carried
/// across re-solves of the same item: the NOMP relaxation runs through
/// [`nomp_path_warm`] (validated replay + incremental correlations), and
/// an unchanged re-solve — bit-equal target, same budget and caps —
/// returns the cached selection without rounding or evaluating anything.
pub fn integer_regression_warm_ctl<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    warm: &mut RegressionWarm,
    ctl: SolveCtl<'_>,
) -> Selection
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(task, m, &mut evaluate, workspace, Some(warm), false, ctl)
        .unwrap_or_default()
}

/// [`try_integer_regression_ctl`] with a [`RegressionWarm`] cache; see
/// [`integer_regression_warm_ctl`].
///
/// # Errors
/// As [`try_integer_regression`].
pub fn try_integer_regression_warm_ctl<F>(
    task: &RegressionTask,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    warm: &mut RegressionWarm,
    ctl: SolveCtl<'_>,
) -> Result<Selection, SolveError>
where
    F: FnMut(&Selection) -> f64,
{
    integer_regression_impl(task, m, &mut evaluate, workspace, Some(warm), true, ctl)
}

/// Assemble the regression task for a session re-solve, reusing the
/// matrix parked in `warm` when its structural key licenses it: exact
/// match → reuse outright (trajectory kept), append-only growth on a CSC
/// matrix → push the new columns in place (trajectory dropped — it
/// replays a different candidate set), anything else → rebuild under
/// `backend` (trajectory dropped). Grown and rebuilt matrices are
/// entry-for-entry identical ([`column_entries`] is shared), so every
/// path yields byte-identical selections.
///
/// On an exact key match the held representation wins even if `backend`
/// changed between calls — representations are selection-equivalent, so
/// swapping one in costs a rebuild for no observable difference.
fn session_task(
    space: &VectorSpace,
    item: &Item,
    opinion_target: &[f64],
    aspect_targets: &[(&[f64], f64)],
    backend: MatrixBackend,
    warm: &mut RegressionWarm,
) -> Result<(MatrixKey, RegressionTask), CoreError> {
    let target = RegressionTask::try_stack_target(space, opinion_target, aspect_targets)?;
    let dedup = DedupColumns::build(item);
    let key = MatrixKey::build(space, item, &dedup, aspect_targets);
    let matrix = match warm.matrix.take() {
        Some((held_key, held)) if held_key == key => held,
        Some((held_key, TaskMatrix::Sparse(mut csc))) if held_key.is_prefix_of(&key) => {
            for g in held_key.reps.len()..key.reps.len() {
                let entries =
                    column_entries(space, &item.features[dedup.groups[g][0]], aspect_targets);
                csc.try_push_column(&entries)
                    .map_err(classify_build_error)?;
            }
            warm.invalidate();
            TaskMatrix::Sparse(csc)
        }
        held => {
            // A held matrix that reaches here failed validation (the item
            // was edited, a weight changed, a dense matrix cannot grow);
            // its trajectory describes a dead candidate set.
            if held.is_some() {
                warm.invalidate();
            }
            let columns: Vec<Vec<(usize, f64)>> = dedup
                .groups
                .iter()
                .map(|g| column_entries(space, &item.features[g[0]], aspect_targets))
                .collect();
            assemble_matrix(key.rows, &columns, backend)?
        }
    };
    Ok((
        key,
        RegressionTask {
            matrix,
            target,
            dedup,
        },
    ))
}

/// Shared engine behind the session entry points: build-or-reuse the
/// design matrix via [`session_task`], run the regression, park the
/// matrix back in `warm` for the next re-solve (also when the solver
/// itself failed — the matrix is still valid).
#[allow(clippy::too_many_arguments)] // mirrors the warm_ctl surface plus the raw task blocks
fn session_impl<F>(
    space: &VectorSpace,
    item: &Item,
    opinion_target: &[f64],
    aspect_targets: &[(&[f64], f64)],
    backend: MatrixBackend,
    m: usize,
    evaluate: &mut F,
    workspace: &mut NompWorkspace,
    warm: &mut RegressionWarm,
    strict: bool,
    ctl: SolveCtl<'_>,
) -> Result<Selection, CoreError>
where
    F: FnMut(&Selection) -> f64,
{
    let (key, task) = session_task(space, item, opinion_target, aspect_targets, backend, warm)?;
    let result = integer_regression_impl(&task, m, evaluate, workspace, Some(warm), strict, ctl)
        .map_err(|source| CoreError::Solver { item: 0, source });
    warm.matrix = Some((key, task.matrix));
    result
}

/// [`integer_regression_warm_ctl`] that also owns the design-matrix
/// lifecycle: instead of taking a pre-built [`RegressionTask`], this
/// builds the task from the raw blocks and **parks the matrix inside
/// `warm`** between calls. A re-solve of an unchanged item (the
/// alternating sweeps' steady state, the serving daemon's repeat
/// sessions) skips the `O(q·rows)` matrix assembly entirely; an
/// append-only item (incremental ingest) grows its CSC columns in place;
/// anything else rebuilds under `backend`. Selections are byte-identical
/// to building fresh and calling [`integer_regression_warm_ctl`].
///
/// # Panics
/// Panics on malformed target blocks, exactly as
/// [`RegressionTask::build`] does.
#[allow(clippy::too_many_arguments)] // mirrors the warm_ctl surface plus the raw task blocks
pub fn integer_regression_session_ctl<F>(
    space: &VectorSpace,
    item: &Item,
    opinion_target: &[f64],
    aspect_targets: &[(&[f64], f64)],
    backend: MatrixBackend,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    warm: &mut RegressionWarm,
    ctl: SolveCtl<'_>,
) -> Selection
where
    F: FnMut(&Selection) -> f64,
{
    match session_impl(
        space,
        item,
        opinion_target,
        aspect_targets,
        backend,
        m,
        &mut evaluate,
        workspace,
        warm,
        false,
        ctl,
    ) {
        Ok(sel) => sel,
        // Non-strict regressions never report solver errors, so the only
        // reachable failure is a malformed task — the build panic.
        Err(e) => panic!("integer_regression_session_ctl: {e}"),
    }
}

/// Strict variant of [`integer_regression_session_ctl`]: task-build
/// failures and solver failures are both reported instead of panicking
/// or degrading.
///
/// # Errors
/// [`CoreError::DimensionMismatch`] on malformed target blocks;
/// [`CoreError::Solver`] (with `item` 0 — the caller knows which item it
/// is solving) when the relaxation fails.
#[allow(clippy::too_many_arguments)] // mirrors the warm_ctl surface plus the raw task blocks
pub fn try_integer_regression_session_ctl<F>(
    space: &VectorSpace,
    item: &Item,
    opinion_target: &[f64],
    aspect_targets: &[(&[f64], f64)],
    backend: MatrixBackend,
    m: usize,
    mut evaluate: F,
    workspace: &mut NompWorkspace,
    warm: &mut RegressionWarm,
    ctl: SolveCtl<'_>,
) -> Result<Selection, CoreError>
where
    F: FnMut(&Selection) -> f64,
{
    session_impl(
        space,
        item,
        opinion_target,
        aspect_targets,
        backend,
        m,
        &mut evaluate,
        workspace,
        warm,
        true,
        ctl,
    )
}

/// Shared engine behind the strict and non-strict entry points. `strict`
/// decides what a failed relaxation does: propagate the classified error
/// (checked solvers) or continue into the single-review fallback (legacy
/// behaviour, kept bit-for-bit for well-posed inputs).
fn integer_regression_impl<F>(
    task: &RegressionTask,
    m: usize,
    evaluate: &mut F,
    workspace: &mut NompWorkspace,
    mut warm: Option<&mut RegressionWarm>,
    strict: bool,
    ctl: SolveCtl<'_>,
) -> Result<Selection, SolveError>
where
    F: FnMut(&Selection) -> f64,
{
    let metrics = ctl.metrics;
    let caps = task.dedup.caps();
    let q = task.dedup.len();
    if let Some(mm) = metrics {
        SolverMetrics::incr(&mm.integer_regressions);
    }
    let span = tracing::debug_span!("integer_regression", m = m, q = q);
    let _span_guard = span.enter();
    let mut best: Option<(f64, Selection)> = None;
    let consider = |sel: Selection, evaluate: &mut F, best: &mut Option<(f64, Selection)>| {
        if sel.len() > m {
            return;
        }
        let cost = evaluate(&sel);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            *best = Some((cost, sel));
        }
    };

    if q > 0 && m > 0 {
        // Budgets ℓ > q stop exactly where ℓ = q does (the support can
        // never exceed the q distinct columns), so the path only needs the
        // distinct budgets 1..=min(m, q); duplicates would re-evaluate the
        // same candidates and lose every strict-< comparison anyway.
        let l_max = m.min(q);
        let opts = NompOptions::with_max_atoms(l_max);

        // Full skip: an unchanged re-solve (bit-equal target under the
        // same options, same budget and caps) would reproduce the cached
        // answer verbatim — the pursuit deterministically, the rounding
        // and evaluation deterministically from it. Count the reuse as
        // the engine's own fast path would.
        if let Some(w) = warm.as_deref_mut() {
            if let Some(c) = &w.cached {
                if c.m == m && c.caps == caps && w.state.full_reuse_ready(&task.target, opts) {
                    w.state.record_full_reuse(metrics);
                    return Ok(c.selection.clone());
                }
            }
        }

        let solved = match warm.as_deref_mut() {
            Some(w) => nomp_path_warm(
                &task.matrix,
                &task.target,
                opts,
                workspace,
                &mut w.state,
                ctl,
            ),
            None => nomp_path_ctl(&task.matrix, &task.target, opts, workspace, ctl),
        };
        match solved {
            Ok(path) => {
                for res in &path {
                    if res.support.is_empty() {
                        continue;
                    }
                    for s in 1..=m {
                        if let Some(nu) = round_with_caps(&res.x, s, &caps) {
                            let sel = task.dedup.expand(&nu);
                            consider(sel, evaluate, &mut best);
                        }
                    }
                }
            }
            Err(e) if strict => return Err(e),
            Err(_) => {}
        }
    }

    // Fallback: best single review (ensures a non-empty selection).
    if best.as_ref().is_none_or(|(_, s)| s.is_empty()) {
        for g in 0..q {
            let mut nu = vec![0usize; q];
            nu[g] = 1;
            let sel = task.dedup.expand(&nu);
            consider(sel, evaluate, &mut best);
        }
    }

    let selection = best.map(|(_, s)| s).unwrap_or_default();
    // Pair the answer with the relaxation trajectory that produced it; the
    // engine declines to store a trajectory for cancelled pursuits, and
    // `full_reuse_ready` is false then, so a truncated anytime answer is
    // never served as a completed one.
    if q > 0 && m > 0 {
        if let Some(w) = warm {
            if w.state
                .full_reuse_ready(&task.target, NompOptions::with_max_atoms(m.min(q)))
            {
                w.cached = Some(CachedSelection {
                    m,
                    caps,
                    selection: selection.clone(),
                });
            } else {
                w.cached = None;
            }
        }
    }
    Ok(selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Item;
    use crate::space::{OpinionScheme, VectorSpace};
    use comparesets_data::{Polarity, ProductId, ReviewId};
    use comparesets_linalg::vector::sq_distance;

    fn item_with(reviews: Vec<Vec<(usize, Polarity)>>) -> Item {
        Item::from_mentions(
            ProductId(0),
            reviews
                .into_iter()
                .enumerate()
                .map(|(i, ms)| (ReviewId(i as u32), ms))
                .collect(),
        )
    }

    #[test]
    fn dedup_groups_identical_reviews() {
        use Polarity::Positive;
        let item = item_with(vec![
            vec![(0, Positive)],
            vec![(1, Positive)],
            vec![(0, Positive)],
            vec![(0, Positive)],
        ]);
        let d = DedupColumns::build(&item);
        assert_eq!(d.len(), 2);
        assert_eq!(d.caps(), vec![3, 1]);
        let sel = d.expand(&[2, 1]);
        assert_eq!(sel.indices, vec![0, 1, 2]);
        assert!(!d.is_empty());
    }

    #[test]
    fn round_with_caps_basic() {
        // x̂ = (0.5, 0.5), s = 3, caps (2, 2) → (2,1) or (1,2); largest
        // remainder with equal fractions keeps order stability.
        let nu = round_with_caps(&[0.5, 0.5], 3, &[2, 2]).unwrap();
        assert_eq!(nu.iter().sum::<usize>(), 3);
        assert!(nu.iter().all(|&v| v <= 2));
    }

    #[test]
    fn round_with_caps_respects_caps() {
        let nu = round_with_caps(&[1.0, 0.0], 5, &[2, 3]).unwrap();
        assert_eq!(nu[0], 2);
        // Cap binds; remainder flows to the other entry up to its cap.
        assert!(nu.iter().sum::<usize>() <= 5);
    }

    #[test]
    fn round_with_caps_zero_mass_is_none() {
        assert!(round_with_caps(&[0.0, 0.0], 3, &[1, 1]).is_none());
        assert!(round_with_caps(&[0.5], 0, &[1]).is_none());
    }

    #[test]
    fn task_builder_shapes() {
        use Polarity::{Negative, Positive};
        let item = item_with(vec![vec![(0, Positive)], vec![(1, Negative)]]);
        let space = VectorSpace::new(2, OpinionScheme::Binary);
        let tau = vec![0.5, 0.0, 0.0, 0.5];
        let gamma = vec![1.0, 1.0];
        let phi_other = vec![1.0, 0.0];
        let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 2.0), (&phi_other, 0.5)]);
        // rows = 4 (opinion) + 2 + 2.
        assert_eq!(task.matrix.rows(), 8);
        assert_eq!(task.matrix.cols(), 2);
        // Aspect block of review 0 is weighted by 2.0 then 0.5.
        assert_eq!(task.matrix.get(4, 0), 2.0);
        assert_eq!(task.matrix.get(6, 0), 0.5);
        // Target is [τ; 2Γ; 0.5φ].
        assert_eq!(task.target.len(), 8);
        assert_eq!(task.target[4], 2.0);
        assert_eq!(task.target[6], 0.5);
    }

    /// Working Example 2: Integer-Regression on ℛ₁ with m = 3 and λ = 1
    /// must recover a selection whose π and φ equal τ₁ and Γ exactly.
    #[test]
    fn working_example_2_recovers_optimal_selection() {
        let item = crate::space::fixtures::working_example_item();
        let space = VectorSpace::new(5, OpinionScheme::Binary);
        let all: Vec<usize> = (0..7).collect();
        let tau = space.pi(&item, &all);
        let gamma = space.phi(&item, &all);
        let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 1.0)]);
        let sel = integer_regression(&task, 3, |s| {
            let pi = space.pi(&item, &s.indices);
            let phi = space.phi(&item, &s.indices);
            sq_distance(&tau, &pi) + sq_distance(&gamma, &phi)
        });
        assert!(sel.len() <= 3);
        let pi = space.pi(&item, &sel.indices);
        let phi = space.phi(&item, &sel.indices);
        assert!(
            sq_distance(&tau, &pi) < 1e-12,
            "pi {pi:?} tau {tau:?} sel {sel:?}"
        );
        assert!(sq_distance(&gamma, &phi) < 1e-12, "phi {phi:?}");
    }

    /// With m ≥ 4 the paper notes {r1,r2,r3,r4} is another optimum; the
    /// solver must still achieve zero objective.
    #[test]
    fn working_example_2_with_larger_budget() {
        let item = crate::space::fixtures::working_example_item();
        let space = VectorSpace::new(5, OpinionScheme::Binary);
        let all: Vec<usize> = (0..7).collect();
        let tau = space.pi(&item, &all);
        let gamma = space.phi(&item, &all);
        let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 1.0)]);
        let sel = integer_regression(&task, 4, |s| {
            let pi = space.pi(&item, &s.indices);
            let phi = space.phi(&item, &s.indices);
            sq_distance(&tau, &pi) + sq_distance(&gamma, &phi)
        });
        let pi = space.pi(&item, &sel.indices);
        let phi = space.phi(&item, &sel.indices);
        assert!(sq_distance(&tau, &pi) + sq_distance(&gamma, &phi) < 1e-12);
    }

    #[test]
    fn never_exceeds_budget_and_never_empty() {
        use Polarity::{Negative, Positive};
        let item = item_with(vec![
            vec![(0, Positive)],
            vec![(0, Negative)],
            vec![(1, Positive)],
            vec![(2, Negative)],
            vec![(0, Positive), (1, Negative)],
        ]);
        let space = VectorSpace::new(3, OpinionScheme::Binary);
        let all: Vec<usize> = (0..5).collect();
        let tau = space.pi(&item, &all);
        let gamma = space.phi(&item, &all);
        for m in 1..=5 {
            let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 1.0)]);
            let sel = integer_regression(&task, m, |s| {
                let pi = space.pi(&item, &s.indices);
                sq_distance(&tau, &pi)
            });
            assert!(!sel.is_empty(), "m={m}");
            assert!(sel.len() <= m, "m={m} sel={sel:?}");
        }
    }

    #[test]
    fn single_review_item() {
        let item = item_with(vec![vec![(0, Polarity::Positive)]]);
        let space = VectorSpace::new(1, OpinionScheme::Binary);
        let tau = vec![1.0, 0.0];
        let gamma = vec![1.0];
        let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 1.0)]);
        let sel = integer_regression(&task, 3, |s| {
            sq_distance(&tau, &space.pi(&item, &s.indices))
        });
        assert_eq!(sel.indices, vec![0]);
    }

    fn assert_matrices_bit_identical(a: &TaskMatrix, b: &TaskMatrix, what: &str) {
        assert_eq!(a.rows(), b.rows(), "{what}: rows");
        assert_eq!(a.cols(), b.cols(), "{what}: cols");
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert_eq!(
                    a.get(r, c).to_bits(),
                    b.get(r, c).to_bits(),
                    "{what}: entry ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn session_grows_parked_csc_in_place_to_match_rebuild() {
        use Polarity::{Negative, Positive};
        let space = VectorSpace::new(3, OpinionScheme::Binary);
        let tau = vec![0.5, 0.0, 0.0, 0.25, 0.25, 0.0];
        let gamma = vec![1.0, 1.0, 1.0];
        let targets: [(&[f64], f64); 1] = [(&gamma, 1.0)];

        let small = item_with(vec![vec![(0, Positive)], vec![(1, Negative)]]);
        let mut warm = RegressionWarm::new();
        let (key, task) = session_task(
            &space,
            &small,
            &tau,
            &targets,
            MatrixBackend::Sparse,
            &mut warm,
        )
        .unwrap();
        assert!(task.matrix.is_sparse());
        warm.matrix = Some((key, task.matrix.clone()));

        // Appending a structurally new review must extend the parked CSC
        // in place — and land bit-identically on a from-scratch build.
        let grown_item = item_with(vec![
            vec![(0, Positive)],
            vec![(1, Negative)],
            vec![(2, Positive)],
        ]);
        let (key2, grown) = session_task(
            &space,
            &grown_item,
            &tau,
            &targets,
            MatrixBackend::Sparse,
            &mut warm,
        )
        .unwrap();
        let rebuilt = RegressionTask::try_build_with(
            &space,
            &grown_item,
            &tau,
            &targets,
            MatrixBackend::Sparse,
        )
        .unwrap();
        assert!(grown.matrix.is_sparse());
        assert_matrices_bit_identical(&grown.matrix, &rebuilt.matrix, "grown vs rebuilt");

        // Exact-key reuse: re-solving the identical item hands the parked
        // matrix straight back.
        warm.matrix = Some((key2, grown.matrix.clone()));
        let (_, reused) = session_task(
            &space,
            &grown_item,
            &tau,
            &targets,
            MatrixBackend::Sparse,
            &mut warm,
        )
        .unwrap();
        assert_matrices_bit_identical(&reused.matrix, &rebuilt.matrix, "exact-key reuse");
    }

    #[test]
    fn session_rebuilds_on_structural_mismatch() {
        use Polarity::{Negative, Positive};
        let space = VectorSpace::new(3, OpinionScheme::Binary);
        let tau = vec![0.5, 0.0, 0.0, 0.25, 0.25, 0.0];
        let gamma = vec![1.0, 1.0, 1.0];
        let targets: [(&[f64], f64); 1] = [(&gamma, 1.0)];
        let item = item_with(vec![vec![(0, Positive)], vec![(1, Negative)]]);

        let mut warm = RegressionWarm::new();
        let (key, task) = session_task(
            &space,
            &item,
            &tau,
            &targets,
            MatrixBackend::Sparse,
            &mut warm,
        )
        .unwrap();
        warm.matrix = Some((key, task.matrix));

        // Different target weight → different weight_bits → not a prefix:
        // the session must rebuild, not grow.
        let reweighted: [(&[f64], f64); 1] = [(&gamma, 2.0)];
        let (_, rebuilt_via_session) = session_task(
            &space,
            &item,
            &tau,
            &reweighted,
            MatrixBackend::Sparse,
            &mut warm,
        )
        .unwrap();
        let fresh =
            RegressionTask::try_build_with(&space, &item, &tau, &reweighted, MatrixBackend::Sparse)
                .unwrap();
        assert_matrices_bit_identical(
            &rebuilt_via_session.matrix,
            &fresh.matrix,
            "mismatch rebuild",
        );
    }

    #[test]
    fn try_build_classifies_dimension_mismatches() {
        let item = item_with(vec![vec![(0, Polarity::Positive)]]);
        let space = VectorSpace::new(2, OpinionScheme::Binary);
        let short_tau = vec![1.0]; // opinion_dim is 4 for Binary over 2 aspects
        let r = RegressionTask::try_build(&space, &item, &short_tau, &[]);
        assert!(matches!(
            r,
            Err(crate::error::CoreError::DimensionMismatch { .. })
        ));
        let tau = vec![0.0; space.opinion_dim()];
        let short_gamma = vec![1.0];
        let r = RegressionTask::try_build(&space, &item, &tau, &[(&short_gamma, 1.0)]);
        assert!(matches!(
            r,
            Err(crate::error::CoreError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn strict_variant_matches_legacy_on_well_posed_input() {
        let item = crate::space::fixtures::working_example_item();
        let space = VectorSpace::new(5, OpinionScheme::Binary);
        let all: Vec<usize> = (0..7).collect();
        let tau = space.pi(&item, &all);
        let gamma = space.phi(&item, &all);
        let task = RegressionTask::build(&space, &item, &tau, &[(&gamma, 1.0)]);
        let eval = |s: &Selection| {
            sq_distance(&tau, &space.pi(&item, &s.indices))
                + sq_distance(&gamma, &space.phi(&item, &s.indices))
        };
        let legacy = integer_regression(&task, 3, eval);
        let strict = try_integer_regression(&task, 3, eval).unwrap();
        assert_eq!(legacy, strict);
    }

    #[test]
    fn strict_variant_propagates_non_finite_targets() {
        let item = item_with(vec![vec![(0, Polarity::Positive)]]);
        let space = VectorSpace::new(1, OpinionScheme::Binary);
        let tau = vec![1.0, 0.0];
        let mut task = RegressionTask::build(&space, &item, &tau, &[]);
        task.target[0] = f64::NAN;
        let r = try_integer_regression(&task, 2, |_| 0.0);
        assert!(matches!(r, Err(SolveError::NonFinite { .. })));
        // The legacy entry point degrades to the single-review fallback
        // instead of failing.
        let sel = integer_regression(&task, 2, |_| 0.0);
        assert_eq!(sel.indices, vec![0]);
    }
}
