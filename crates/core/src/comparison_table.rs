//! Aspect-by-item comparison tables — the presentation layer of Figure 1.
//!
//! The paper's motivating screenshot shows an aspect × item grid ("Picture
//! Quality 4.5★ | 4.3★ | — | 4.8★ …"). Given a solved instance, this
//! module aggregates the *selected* reviews into exactly that structure:
//! per (aspect, item), the positive/negative/neutral mention counts and a
//! 1–5 star score, with aspects ordered by how many items they cover —
//! the common aspects CompaReSetS+ synchronizes on float to the top.

use crate::instance::{InstanceContext, Selection};
use comparesets_data::Polarity;

/// Sentiment tally of one (aspect, item) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellCounts {
    /// Positive mentions in the selected reviews.
    pub positive: usize,
    /// Negative mentions.
    pub negative: usize,
    /// Neutral mentions.
    pub neutral: usize,
}

impl CellCounts {
    /// Total mentions.
    pub fn total(&self) -> usize {
        self.positive + self.negative + self.neutral
    }

    /// A 1–5 star score: 3 + 2·(pos − neg)/(pos + neg), the same shape the
    /// synthetic generator uses for review ratings. `None` for untouched
    /// cells (rendered as "—" like Figure 1's missing entries).
    pub fn stars(&self) -> Option<f64> {
        if self.total() == 0 {
            return None;
        }
        let signed = self.positive as f64 - self.negative as f64;
        let voiced = (self.positive + self.negative) as f64;
        if voiced == 0.0 {
            return Some(3.0);
        }
        Some((3.0 + 2.0 * signed / voiced).clamp(1.0, 5.0))
    }
}

/// One row of the table: an aspect and its per-item cells.
#[derive(Debug, Clone)]
pub struct AspectRow {
    /// Aspect index into the dataset vocabulary.
    pub aspect: usize,
    /// One cell per item (target first).
    pub cells: Vec<CellCounts>,
    /// Number of items whose selected reviews mention the aspect.
    pub coverage: usize,
}

/// The full comparison table.
#[derive(Debug, Clone)]
pub struct ComparisonTable {
    /// Item product ids (target first).
    pub products: Vec<comparesets_data::ProductId>,
    /// Rows sorted by coverage (descending), then aspect index.
    pub rows: Vec<AspectRow>,
}

impl ComparisonTable {
    /// Build the table from selected review sets. `items` restricts to a
    /// core list (must contain index 0); `None` uses all items.
    ///
    /// # Panics
    /// Panics when `selections` does not align with the instance.
    pub fn build(ctx: &InstanceContext, selections: &[Selection], items: Option<&[usize]>) -> Self {
        assert_eq!(selections.len(), ctx.num_items(), "one selection per item");
        let all: Vec<usize> = (0..ctx.num_items()).collect();
        let items = items.unwrap_or(&all);
        let z = ctx.space().num_aspects();
        let mut cells = vec![vec![CellCounts::default(); items.len()]; z];
        for (col, &i) in items.iter().enumerate() {
            let item = ctx.item(i);
            for &r in &selections[i].indices {
                for &(a, pol) in &item.features[r].mentions {
                    let cell = &mut cells[a][col];
                    match pol {
                        Polarity::Positive => cell.positive += 1,
                        Polarity::Negative => cell.negative += 1,
                        Polarity::Neutral => cell.neutral += 1,
                    }
                }
            }
        }
        let mut rows: Vec<AspectRow> = cells
            .into_iter()
            .enumerate()
            .filter_map(|(aspect, cells)| {
                let coverage = cells.iter().filter(|c| c.total() > 0).count();
                (coverage > 0).then_some(AspectRow {
                    aspect,
                    cells,
                    coverage,
                })
            })
            .collect();
        rows.sort_by(|a, b| b.coverage.cmp(&a.coverage).then(a.aspect.cmp(&b.aspect)));
        ComparisonTable {
            products: items.iter().map(|&i| ctx.item(i).product).collect(),
            rows,
        }
    }

    /// Rows covered by every item — the directly comparable aspects.
    pub fn common_aspects(&self) -> Vec<usize> {
        let n = self.products.len();
        self.rows
            .iter()
            .filter(|r| r.coverage == n)
            .map(|r| r.aspect)
            .collect()
    }

    /// Render with aspect names from a vocabulary.
    ///
    /// # Panics
    /// Panics when the vocabulary is smaller than the aspect universe.
    pub fn render(&self, aspect_names: &[String]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<16}", "Aspect"));
        for p in &self.products {
            out.push_str(&format!("  {:>12}", format!("item #{}", p.0)));
        }
        out.push('\n');
        out.push_str(&"-".repeat(16 + 14 * self.products.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<16}", aspect_names[row.aspect]));
            for cell in &row.cells {
                let shown = match cell.stars() {
                    Some(s) => format!("{s:.1}* ({}/{})", cell.positive, cell.negative),
                    None => "-".to_string(),
                };
                out.push_str(&format!("  {shown:>12}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceContext, Item};
    use crate::space::OpinionScheme;
    use comparesets_data::{Polarity, ProductId, ReviewId};

    fn two_item_ctx() -> InstanceContext {
        use Polarity::{Negative, Neutral, Positive};
        let a = Item::from_mentions(
            ProductId(0),
            vec![
                (ReviewId(0), vec![(0, Positive), (1, Positive)]),
                (ReviewId(1), vec![(0, Negative)]),
            ],
        );
        let b = Item::from_mentions(
            ProductId(1),
            vec![
                (ReviewId(2), vec![(0, Positive)]),
                (ReviewId(3), vec![(2, Neutral)]),
            ],
        );
        InstanceContext::from_items(3, vec![a, b], OpinionScheme::Binary)
    }

    fn select_all(ctx: &InstanceContext) -> Vec<Selection> {
        (0..ctx.num_items())
            .map(|i| Selection::new((0..ctx.item(i).num_reviews()).collect()))
            .collect()
    }

    #[test]
    fn cells_tally_polarities() {
        let ctx = two_item_ctx();
        let table = ComparisonTable::build(&ctx, &select_all(&ctx), None);
        // Aspect 0 covered by both items → first row.
        assert_eq!(table.rows[0].aspect, 0);
        assert_eq!(table.rows[0].coverage, 2);
        let c00 = table.rows[0].cells[0];
        assert_eq!((c00.positive, c00.negative, c00.neutral), (1, 1, 0));
        let c01 = table.rows[0].cells[1];
        assert_eq!((c01.positive, c01.negative), (1, 0));
        assert_eq!(table.common_aspects(), vec![0]);
    }

    #[test]
    fn stars_map_sentiment_to_scale() {
        let all_pos = CellCounts {
            positive: 3,
            negative: 0,
            neutral: 0,
        };
        assert_eq!(all_pos.stars(), Some(5.0));
        let all_neg = CellCounts {
            positive: 0,
            negative: 2,
            neutral: 0,
        };
        assert_eq!(all_neg.stars(), Some(1.0));
        let mixed = CellCounts {
            positive: 1,
            negative: 1,
            neutral: 0,
        };
        assert_eq!(mixed.stars(), Some(3.0));
        let neutral_only = CellCounts {
            positive: 0,
            negative: 0,
            neutral: 2,
        };
        assert_eq!(neutral_only.stars(), Some(3.0));
        assert_eq!(CellCounts::default().stars(), None);
    }

    #[test]
    fn uncovered_aspects_are_dropped_and_rows_sorted_by_coverage() {
        let ctx = two_item_ctx();
        let table = ComparisonTable::build(&ctx, &select_all(&ctx), None);
        // Aspects present: 0 (both), 1 (item 0), 2 (item 1). None missing.
        assert_eq!(table.rows.len(), 3);
        assert!(table.rows[0].coverage >= table.rows[1].coverage);
        assert!(table.rows[1].coverage >= table.rows[2].coverage);
    }

    #[test]
    fn empty_selection_yields_empty_table() {
        let ctx = two_item_ctx();
        let sels = vec![Selection::default(), Selection::default()];
        let table = ComparisonTable::build(&ctx, &sels, None);
        assert!(table.rows.is_empty());
        assert!(table.common_aspects().is_empty());
    }

    #[test]
    fn item_subset_restricts_columns() {
        let ctx = two_item_ctx();
        let table = ComparisonTable::build(&ctx, &select_all(&ctx), Some(&[0]));
        assert_eq!(table.products, vec![ProductId(0)]);
        for row in &table.rows {
            assert_eq!(row.cells.len(), 1);
        }
    }

    #[test]
    fn renders_dashes_for_missing_cells() {
        let ctx = two_item_ctx();
        let table = ComparisonTable::build(&ctx, &select_all(&ctx), None);
        let names: Vec<String> = ["battery", "lens", "strap"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let text = table.render(&names);
        assert!(text.contains("battery"));
        assert!(text.contains('-'));
        assert!(text.contains("item #0"));
        assert!(text.contains("item #1"));
    }
}
