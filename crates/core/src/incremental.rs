//! Incremental selection maintenance for streaming corpora.
//!
//! Review streams never stop; §4.1.1 notes every target product is an
//! independent problem instance, but *within* an instance a new review
//! changes the item's candidate set and its target vector τᵢ (and Γ when
//! the target item grows). Re-solving everything per arriving review is
//! wasteful: [`IncrementalSession`] keeps a solved instance alive and,
//! on arrival,
//!
//! 1. appends the review and refreshes τᵢ (and Γ if `i == 0`);
//! 2. re-runs Integer-Regression for the affected item only, against the
//!    other items' *current* selections (one step of Algorithm 1);
//! 3. optionally runs a full refresh sweep when drift accumulates.
//!
//! The affected-item update touches `O(m³ + |ℛᵢ|·m)` work instead of the
//! full `O((m³ + |ℛ̄|·m)·n)` resolve, and the session tracks objective
//! drift so callers can trigger [`IncrementalSession::refresh`] on a
//! budget.

use crate::comparesets::solve_comparesets_plus_with;
use crate::instance::{InstanceContext, ReviewFeature, Selection};
use crate::integer_regression::{
    integer_regression_ctl, integer_regression_session_ctl, DedupColumns, RegressionTask,
    RegressionWarm,
};
use crate::objective::comparesets_plus_objective;
use crate::{SelectParams, SolveOptions};
use comparesets_data::ReviewId;
use comparesets_linalg::vector::sq_distance;
use comparesets_linalg::NompWorkspace;

/// One corpus mutation addressed to a session item — the in-memory twin
/// of `comparesets_data::ReviewEvent`, carrying the already-extracted
/// [`ReviewFeature`] instead of raw dataset annotations.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// Append a new review to item `item`.
    Add {
        /// Session item index (0 = target).
        item: usize,
        /// Dataset review id of the new review.
        id: ReviewId,
        /// Its extracted annotation feature.
        feature: ReviewFeature,
    },
    /// Replace the feature of an existing review.
    Edit {
        /// Session item index (0 = target).
        item: usize,
        /// Dataset review id to edit.
        id: ReviewId,
        /// The replacement feature.
        feature: ReviewFeature,
    },
    /// Remove a review from its item's candidate set.
    Delete {
        /// Session item index (0 = target).
        item: usize,
        /// Dataset review id to remove.
        id: ReviewId,
    },
}

/// A live selection over one comparison instance.
#[derive(Debug, Clone)]
pub struct IncrementalSession {
    ctx: InstanceContext,
    params: SelectParams,
    opts: SolveOptions,
    selections: Vec<Selection>,
    updates_since_refresh: usize,
    /// Pursuit scratch reused by every per-review update and refresh.
    workspace: NompWorkspace,
    /// Per-item warm-start caches carried across re-selections; the
    /// affected item's cache is invalidated on ingest (its candidate set
    /// changed), the others keep theirs and are re-validated by the
    /// engine against the new target (ARCHITECTURE.md §9).
    warm: Vec<RegressionWarm>,
}

impl IncrementalSession {
    /// Solve the instance from scratch and start a session.
    pub fn new(ctx: InstanceContext, params: SelectParams) -> Self {
        IncrementalSession::with_options(ctx, params, SolveOptions::default())
    }

    /// [`IncrementalSession::new`] with execution options; the options
    /// apply to the initial solve and every [`IncrementalSession::refresh`].
    pub fn with_options(ctx: InstanceContext, params: SelectParams, opts: SolveOptions) -> Self {
        let selections = solve_comparesets_plus_with(&ctx, &params, &opts);
        let warm = (0..ctx.num_items())
            .map(|_| RegressionWarm::new())
            .collect();
        IncrementalSession {
            ctx,
            params,
            opts,
            selections,
            updates_since_refresh: 0,
            workspace: NompWorkspace::new(),
            warm,
        }
    }

    /// Current selections (aligned with the context's items).
    pub fn selections(&self) -> &[Selection] {
        &self.selections
    }

    /// The live instance context.
    pub fn context(&self) -> &InstanceContext {
        &self.ctx
    }

    /// Current Equation-5 objective.
    pub fn objective(&self) -> f64 {
        comparesets_plus_objective(
            &self.ctx,
            &self.selections,
            self.params.lambda,
            self.params.mu,
        )
    }

    /// Number of single-item updates applied since the last full refresh.
    pub fn updates_since_refresh(&self) -> usize {
        self.updates_since_refresh
    }

    /// Ingest a new review for item `i` and re-select that item.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn add_review(&mut self, i: usize, id: ReviewId, feature: ReviewFeature) {
        assert!(i < self.ctx.num_items(), "item index out of range");
        self.ctx.push_review(i, id, feature);
        // The appended review reshapes item i's candidate matrix; drop its
        // warm trajectory rather than relying on engine-side validation.
        self.warm[i].invalidate();
        self.reselect_item(i);
        self.updates_since_refresh += 1;
    }

    /// Replace review `id`'s annotations on item `i` and re-select that
    /// item. Selection indices stay valid (positions are unchanged); the
    /// item's targets and candidate matrix are rebuilt.
    ///
    /// # Panics
    /// Panics when `i` is out of range or `id` is not one of item `i`'s
    /// reviews.
    pub fn edit_review(&mut self, i: usize, id: ReviewId, feature: ReviewFeature) {
        assert!(i < self.ctx.num_items(), "item index out of range");
        self.ctx.edit_review(i, id, feature);
        self.warm[i].invalidate();
        self.reselect_item(i);
        self.updates_since_refresh += 1;
    }

    /// Remove review `id` from item `i` and re-select that item. The
    /// current selection's indices are remapped first (the deleted
    /// position drops out, later positions shift down), so the kept
    /// selection stays a valid subset of the shrunken candidate set.
    ///
    /// # Panics
    /// Panics when `i` is out of range, `id` is not one of item `i`'s
    /// reviews, or the delete would leave the item with no reviews (a
    /// solvable item needs at least one candidate).
    pub fn delete_review(&mut self, i: usize, id: ReviewId) {
        assert!(i < self.ctx.num_items(), "item index out of range");
        assert!(
            self.ctx.item(i).num_reviews() > 1,
            "cannot delete the last review of an item"
        );
        let Some(pos) = self.ctx.position_of(i, id) else {
            panic!("review {id:?} is not part of item {i}");
        };
        self.ctx.remove_review(i, id);
        let old = std::mem::take(&mut self.selections[i].indices);
        self.selections[i].indices = old
            .into_iter()
            .filter(|&r| r != pos)
            .map(|r| if r > pos { r - 1 } else { r })
            .collect();
        if self.selections[i].is_empty() {
            // The whole selection was deleted; seed a valid placeholder
            // so the better-of-old-new comparison below has a feasible
            // incumbent.
            self.selections[i] = Selection::new(vec![0]);
        }
        self.warm[i].invalidate();
        self.reselect_item(i);
        self.updates_since_refresh += 1;
    }

    /// Apply one [`SessionEvent`] — the dispatcher the streaming replay
    /// path uses.
    ///
    /// # Panics
    /// As for [`add_review`](Self::add_review),
    /// [`edit_review`](Self::edit_review), and
    /// [`delete_review`](Self::delete_review).
    pub fn apply_event(&mut self, event: &SessionEvent) {
        match event {
            SessionEvent::Add { item, id, feature } => {
                self.add_review(*item, *id, feature.clone());
            }
            SessionEvent::Edit { item, id, feature } => {
                self.edit_review(*item, *id, feature.clone());
            }
            SessionEvent::Delete { item, id } => self.delete_review(*item, *id),
        }
    }

    /// Rebuild a session from durable state: a context recovered from a
    /// snapshot plus the WAL-tail events that post-date it. All events
    /// are folded into the context *first*, then one cold solve runs —
    /// so the recovered session is byte-identical to a session started
    /// cold on the final corpus (the crash-recovery identity the
    /// streaming tests pin).
    ///
    /// # Panics
    /// As for [`apply_event`](Self::apply_event), for events that do not
    /// apply to the snapshot state.
    pub fn replay(
        mut ctx: InstanceContext,
        params: SelectParams,
        opts: SolveOptions,
        events: &[SessionEvent],
    ) -> Self {
        for event in events {
            ctx.apply_session_event(event);
        }
        IncrementalSession::with_options(ctx, params, opts)
    }

    /// One step of Algorithm 1 for item `i` against the other items'
    /// current selections; keeps the better of old/new selection. (The
    /// old selection's indices are valid by construction: appends and
    /// edits leave positions unchanged, deletes remap first.)
    fn reselect_item(&mut self, i: usize) {
        // A fired session token skips the re-selection entirely: the old
        // selection stays valid and is the anytime iterate.
        if self.opts.ctl().is_cancelled() {
            return;
        }
        let (lambda, mu) = (self.params.lambda, self.params.mu);
        let n = self.ctx.num_items();
        let other_phis: Vec<Vec<f64>> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                self.ctx
                    .space()
                    .phi(self.ctx.item(j), &self.selections[j].indices)
            })
            .collect();
        let ctx = &self.ctx;
        let cost = |sel: &Selection| {
            let base = crate::objective::item_objective(ctx, i, sel, lambda);
            let phi = ctx.space().phi(ctx.item(i), &sel.indices);
            let coupling: f64 = other_phis.iter().map(|p| sq_distance(&phi, p)).sum();
            base + mu * mu * coupling
        };
        let mut aspect_targets: Vec<(&[f64], f64)> = Vec::with_capacity(1 + other_phis.len());
        aspect_targets.push((ctx.gamma(), lambda));
        for p in &other_phis {
            aspect_targets.push((p.as_slice(), mu));
        }
        // Warm fast path: an unchanged re-selection (e.g. a review arrived
        // on another item without moving its selection) is served from the
        // cache before the design matrix is rebuilt.
        let reused = if self.opts.warm_start {
            RegressionTask::try_stack_target(ctx.space(), ctx.tau(i), &aspect_targets)
                .ok()
                .and_then(|t| {
                    let dedup = DedupColumns::build(ctx.item(i));
                    self.warm[i].probe_reuse(&dedup, &t, self.params.m, self.opts.metrics_ref())
                })
        } else {
            None
        };
        let candidate = if let Some(sel) = reused {
            sel
        } else if self.opts.warm_start {
            // Session path: the parked design matrix survives ingest — an
            // appended review whose feature forms a new dedup group grows
            // the cached CSC by one column in place; a feature matching an
            // existing group reuses the matrix untouched (only the caps
            // changed). Edits and deletes fail the structural key and
            // rebuild.
            integer_regression_session_ctl(
                ctx.space(),
                ctx.item(i),
                ctx.tau(i),
                &aspect_targets,
                self.opts.backend,
                self.params.m,
                cost,
                &mut self.workspace,
                &mut self.warm[i],
                self.opts.ctl(),
            )
        } else {
            let task = RegressionTask::build_with(
                ctx.space(),
                ctx.item(i),
                ctx.tau(i),
                &aspect_targets,
                self.opts.backend,
            );
            integer_regression_ctl(
                &task,
                self.params.m,
                cost,
                &mut self.workspace,
                self.opts.ctl(),
            )
        };
        if cost(&candidate) < cost(&self.selections[i]) {
            self.selections[i] = candidate;
        }
    }

    /// Full re-solve (CompaReSetS + one Algorithm-1 sweep); adopts the
    /// result only when it improves the Equation-5 objective, and resets
    /// the drift counter either way.
    pub fn refresh(&mut self) {
        let fresh = solve_comparesets_plus_with(&self.ctx, &self.params, &self.opts);
        let current = self.objective();
        let candidate =
            comparesets_plus_objective(&self.ctx, &fresh, self.params.lambda, self.params.mu);
        if candidate < current {
            self.selections = fresh;
        }
        self.updates_since_refresh = 0;
    }
}

impl InstanceContext {
    /// Append a review to item `i`, refreshing τᵢ (and Γ when the target
    /// item grows). Selections indexing earlier reviews stay valid.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn push_review(&mut self, i: usize, id: ReviewId, feature: ReviewFeature) {
        let n = self.num_items();
        assert!(i < n, "item index out of range");
        self.push_review_internal(i, id, feature);
    }

    /// Replace review `id`'s feature on item `i`, refreshing τᵢ (and Γ
    /// when `i` is the target). Positions are unchanged, so selections
    /// stay valid.
    ///
    /// # Panics
    /// Panics when `i` is out of range or `id` is not one of item `i`'s
    /// reviews.
    pub fn edit_review(&mut self, i: usize, id: ReviewId, feature: ReviewFeature) {
        assert!(i < self.num_items(), "item index out of range");
        let Some(pos) = self.position_of(i, id) else {
            panic!("review {id:?} is not part of item {i}");
        };
        self.edit_review_internal(i, pos, feature);
    }

    /// Remove review `id` from item `i`, refreshing τᵢ (and Γ when `i`
    /// is the target). Later positions shift down by one — callers
    /// holding selections must remap them (see
    /// [`IncrementalSession::delete_review`]).
    ///
    /// # Panics
    /// Panics when `i` is out of range, `id` is not one of item `i`'s
    /// reviews, or the item would be left with no reviews.
    pub fn remove_review(&mut self, i: usize, id: ReviewId) {
        assert!(i < self.num_items(), "item index out of range");
        assert!(
            self.item(i).num_reviews() > 1,
            "cannot delete the last review of an item"
        );
        let Some(pos) = self.position_of(i, id) else {
            panic!("review {id:?} is not part of item {i}");
        };
        self.remove_review_internal(i, pos);
    }

    /// Fold one [`SessionEvent`] into the context *without* re-selecting
    /// anything — the replay fast path: apply the whole WAL tail, then
    /// solve once.
    ///
    /// # Panics
    /// As for [`push_review`](Self::push_review),
    /// [`edit_review`](Self::edit_review), and
    /// [`remove_review`](Self::remove_review).
    pub fn apply_session_event(&mut self, event: &SessionEvent) {
        match event {
            SessionEvent::Add { item, id, feature } => {
                self.push_review(*item, *id, feature.clone());
            }
            SessionEvent::Edit { item, id, feature } => {
                self.edit_review(*item, *id, feature.clone());
            }
            SessionEvent::Delete { item, id } => self.remove_review(*item, *id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparesets::solve_comparesets_plus;
    use crate::space::OpinionScheme;
    use comparesets_data::{CategoryPreset, Polarity};

    fn session() -> IncrementalSession {
        let d = CategoryPreset::Cellphone.config(60, 21).generate();
        let inst = d.instances().into_iter().next().unwrap().truncated(3);
        let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
        IncrementalSession::new(ctx, SelectParams::default())
    }

    fn feature(aspect: usize, pol: Polarity) -> ReviewFeature {
        ReviewFeature::new(vec![(aspect, pol)])
    }

    #[test]
    fn add_review_grows_item_and_keeps_valid_selection() {
        let mut s = session();
        let before = s.context().item(1).num_reviews();
        s.add_review(1, ReviewId(900_001), feature(0, Polarity::Positive));
        assert_eq!(s.context().item(1).num_reviews(), before + 1);
        assert_eq!(s.updates_since_refresh(), 1);
        for (i, sel) in s.selections().iter().enumerate() {
            assert!(!sel.is_empty());
            assert!(sel.len() <= 3);
            assert!(sel
                .indices
                .iter()
                .all(|&r| r < s.context().item(i).num_reviews()));
        }
    }

    #[test]
    fn target_growth_refreshes_gamma() {
        let mut s = session();
        // An aspect the target never mentioned: its Γ entry starts at 0.
        let z = s.context().space().num_aspects();
        let absent = (0..z)
            .find(|&a| s.context().gamma()[a] == 0.0)
            .expect("some absent aspect");
        for k in 0..7 {
            s.add_review(
                0,
                ReviewId(900_100 + k),
                feature(absent, Polarity::Positive),
            );
        }
        assert!(
            s.context().gamma()[absent] > 0.0,
            "gamma must track the target's new aspect"
        );
    }

    #[test]
    fn incremental_tracks_scratch_solution_quality() {
        let mut s = session();
        // Stream a batch of reviews into the target item.
        for k in 0..5 {
            s.add_review(
                0,
                ReviewId(901_000 + k),
                feature((k % 3) as usize, Polarity::Negative),
            );
        }
        let incremental_obj = s.objective();
        // From-scratch resolve on the grown context.
        let scratch = solve_comparesets_plus(s.context(), &SelectParams::default());
        let scratch_obj = comparesets_plus_objective(s.context(), &scratch, 1.0, 0.1);
        // The incremental solution may lag the scratch one, but not by
        // much — and never the other way by construction of refresh().
        assert!(
            incremental_obj <= scratch_obj * 1.5 + 0.5,
            "incremental {incremental_obj} vs scratch {scratch_obj}"
        );
        s.refresh();
        assert!(s.objective() <= incremental_obj + 1e-9);
        assert_eq!(s.updates_since_refresh(), 0);
    }

    #[test]
    fn refresh_never_worsens_objective() {
        let mut s = session();
        for k in 0..3 {
            s.add_review(1, ReviewId(902_000 + k), feature(1, Polarity::Positive));
        }
        let before = s.objective();
        s.refresh();
        assert!(s.objective() <= before + 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_item_index_panics() {
        let mut s = session();
        s.add_review(99, ReviewId(1), feature(0, Polarity::Positive));
    }
}
