//! CompaReSetS (Problem 1) and CompaReSetS+ (Problem 2, Algorithm 1).
//!
//! * [`solve_comparesets`] solves Equation 1: per item, Integer-Regression
//!   against the concatenated target `[τᵢ; λ·Γ]` (Equation 4).
//! * [`solve_comparesets_plus`] runs Algorithm 1: start from the
//!   CompaReSetS solutions, then for each item rebuild the regression
//!   with the extended target `Υ = [τᵢ; λΓ; μφ(S₁); …; μφ(Sₙ)]` (other
//!   items' current selections) and accept the re-selection only when it
//!   lowers the per-item synchronized objective (lines 10–12).
//!
//! ## Parallel execution
//!
//! The per-item regressions of CompaReSetS are independent, so the
//! `_with` variants fan them out over rayon when
//! [`SolveOptions::parallel`] is set. Results are collected **in item
//! order**, never completion order, so parallel and sequential runs
//! return identical selections. The alternating sweeps of CompaReSetS+
//! are Gauss–Seidel — item `i` reads the other items' *current*
//! selections — and therefore stay sequential by construction; the
//! parallel knob accelerates their CompaReSetS seed (and each per-item
//! step reuses one solver workspace across the whole sweep phase).

use comparesets_linalg::vector::sq_distance;
use comparesets_linalg::{with_pooled_workspace, NompWorkspace};
use rayon::prelude::*;

use crate::error::{validate_params, CoreError};
use crate::instance::{InstanceContext, Selection};
use crate::integer_regression::{
    integer_regression_ctl, integer_regression_session_ctl, try_integer_regression_ctl,
    try_integer_regression_session_ctl, DedupColumns, RegressionTask, RegressionWarm,
};
use crate::{SelectParams, SolveOptions, SolverMetrics};

/// Post-batch deadline classification shared by the checked solvers: when
/// the options' token fired during the solve, the per-item results are
/// suspect (items may have degraded to their fallback), so the batch is
/// reported as [`CoreError::DeadlineExceeded`] carrying the feasible
/// best-so-far selections (failed slots contribute an empty selection).
pub(crate) fn classify_deadline(
    slots: Vec<Result<Selection, CoreError>>,
    opts: &SolveOptions,
) -> Result<Vec<Result<Selection, CoreError>>, CoreError> {
    if !opts.cancel_fired() {
        return Ok(slots);
    }
    if let Some(mm) = opts.metrics_ref() {
        SolverMetrics::incr(&mm.deadline_expirations);
    }
    tracing::warn!("solve observed a fired cancellation token; returning best-so-far selections");
    Err(CoreError::DeadlineExceeded {
        best_so_far: slots.into_iter().map(|r| r.unwrap_or_default()).collect(),
    })
}

/// Solve CompaReSetS (Problem 1): independent Integer-Regression per item
/// with target `[τᵢ; λΓ]`.
pub fn solve_comparesets(ctx: &InstanceContext, params: &SelectParams) -> Vec<Selection> {
    solve_comparesets_with(ctx, params, &SolveOptions::default())
}

/// [`solve_comparesets`] with execution options: when
/// [`SolveOptions::parallel`] is set the per-item regressions run on
/// rayon's pool (collected in item order — results are identical to the
/// sequential path).
pub fn solve_comparesets_with(
    ctx: &InstanceContext,
    params: &SelectParams,
    opts: &SolveOptions,
) -> Vec<Selection> {
    let lambda = params.lambda;
    let ctl = opts.ctl();
    let solve_item = |i: usize, ws: &mut NompWorkspace| {
        let item = ctx.item(i);
        let tau = ctx.tau(i);
        let gamma = ctx.gamma();
        let task =
            RegressionTask::build_with(ctx.space(), item, tau, &[(gamma, lambda)], opts.backend);
        integer_regression_ctl(
            &task,
            params.m,
            |sel| crate::objective::item_objective(ctx, i, sel, lambda),
            ws,
            ctl,
        )
    };
    if opts.parallel {
        crate::run_on_pool(opts, || {
            (0..ctx.num_items())
                .into_par_iter()
                .map(|i| with_pooled_workspace(|ws| solve_item(i, ws)))
                .collect()
        })
    } else {
        let mut ws = NompWorkspace::new();
        (0..ctx.num_items())
            .map(|i| solve_item(i, &mut ws))
            .collect()
    }
}

/// Checked variant of [`solve_comparesets_with`]: validates the parameters
/// up front and isolates numerical failures per item.
///
/// The outer `Err` reports structurally invalid parameters (m = 0,
/// non-finite λ/μ) before any item is touched. The inner vector has one
/// slot per item, in item order: a degenerate item (e.g. NaN-contaminated
/// features) yields `Err(CoreError::Solver { item, .. })` in its slot
/// while every other item still solves — the rayon fan-out is
/// failure-isolated, one bad item never poisons the batch. On well-posed
/// inputs every slot is `Ok` and bit-identical to the unchecked solver.
///
/// # Errors
/// [`CoreError::InvalidParams`] on bad parameters (outer); per-item
/// [`CoreError::Solver`] in the slots (inner);
/// [`CoreError::DeadlineExceeded`] with the feasible best-so-far
/// selections when the options' cancellation token fired mid-solve.
pub fn solve_comparesets_checked(
    ctx: &InstanceContext,
    params: &SelectParams,
    opts: &SolveOptions,
) -> Result<Vec<Result<Selection, CoreError>>, CoreError> {
    validate_params(params)?;
    let lambda = params.lambda;
    let ctl = opts.ctl();
    let solve_item = |i: usize, ws: &mut NompWorkspace| -> Result<Selection, CoreError> {
        let item = ctx.item(i);
        let tau = ctx.tau(i);
        let gamma = ctx.gamma();
        let task = RegressionTask::try_build_with(
            ctx.space(),
            item,
            tau,
            &[(gamma, lambda)],
            opts.backend,
        )?;
        try_integer_regression_ctl(
            &task,
            params.m,
            |sel| crate::objective::item_objective(ctx, i, sel, lambda),
            ws,
            ctl,
        )
        .map_err(|source| CoreError::Solver { item: i, source })
    };
    let slots = if opts.parallel {
        crate::run_on_pool(opts, || {
            (0..ctx.num_items())
                .into_par_iter()
                .map(|i| with_pooled_workspace(|ws| solve_item(i, ws)))
                .collect()
        })
    } else {
        let mut ws = NompWorkspace::new();
        (0..ctx.num_items())
            .map(|i| solve_item(i, &mut ws))
            .collect()
    };
    classify_deadline(slots, opts)
}

/// Solve CompaReSetS+ (Problem 2) with one alternating sweep (Algorithm 1).
pub fn solve_comparesets_plus(ctx: &InstanceContext, params: &SelectParams) -> Vec<Selection> {
    solve_comparesets_plus_sweeps(ctx, params, 1)
}

/// [`solve_comparesets_plus`] with execution options (see
/// [`solve_comparesets_plus_sweeps_with`]).
pub fn solve_comparesets_plus_with(
    ctx: &InstanceContext,
    params: &SelectParams,
    opts: &SolveOptions,
) -> Vec<Selection> {
    solve_comparesets_plus_sweeps_with(ctx, params, 1, opts)
}

/// Solve CompaReSetS+ with a configurable number of alternating sweeps.
/// Algorithm 1 performs a single sweep `i = 1…n`; additional sweeps keep
/// refining while each per-item step can only decrease the objective.
pub fn solve_comparesets_plus_sweeps(
    ctx: &InstanceContext,
    params: &SelectParams,
    sweeps: usize,
) -> Vec<Selection> {
    solve_comparesets_plus_sweeps_with(ctx, params, sweeps, &SolveOptions::default())
}

/// [`solve_comparesets_plus_sweeps`] with execution options. Parallelism
/// applies to the CompaReSetS seed; the Gauss–Seidel sweeps themselves are
/// inherently sequential (each item reads the others' current selections)
/// and run identically regardless of the options.
pub fn solve_comparesets_plus_sweeps_with(
    ctx: &InstanceContext,
    params: &SelectParams,
    sweeps: usize,
    opts: &SolveOptions,
) -> Vec<Selection> {
    let mut warm: Vec<RegressionWarm> = (0..ctx.num_items())
        .map(|_| RegressionWarm::new())
        .collect();
    solve_comparesets_plus_sweeps_warm_with(ctx, params, sweeps, opts, &mut warm)
}

/// [`solve_comparesets_plus_sweeps_with`] with caller-held warm states —
/// the extraction/re-injection point for cross-call reuse (the serving
/// session cache, ARCHITECTURE.md §10).
///
/// `warm` must hold one [`RegressionWarm`] per item, in item order. The
/// states are read *and updated in place*: on return each slot carries the
/// trajectory of its item's last re-solve, so a caller holding them across
/// calls lets a repeat or near-repeat solve start from validated reuse
/// instead of from scratch. Every level of reuse is validated against the
/// live inputs (ARCHITECTURE.md §9), so selections are byte-identical to a
/// cold solve whatever states are passed in — fresh states reproduce
/// [`solve_comparesets_plus_sweeps_with`] exactly, and stale states from a
/// different instance shape simply fail validation and solve cold. With
/// [`SolveOptions::warm_start`] off the states are neither read nor
/// written.
///
/// # Panics
/// Panics when `warm.len() != ctx.num_items()`.
pub fn solve_comparesets_plus_sweeps_warm_with(
    ctx: &InstanceContext,
    params: &SelectParams,
    sweeps: usize,
    opts: &SolveOptions,
    warm: &mut [RegressionWarm],
) -> Vec<Selection> {
    assert_eq!(
        warm.len(),
        ctx.num_items(),
        "one RegressionWarm per item required"
    );
    let (lambda, mu) = (params.lambda, params.mu);
    // Algorithm 1 input: solutions of CompaReSetS.
    let mut selections = solve_comparesets_with(ctx, params, opts);
    let n = ctx.num_items();
    if n <= 1 || mu == 0.0 {
        // Coupling vanishes; CompaReSetS is already optimal for Eq. 5.
        return selections;
    }

    // One pursuit workspace serves every per-item step of every sweep, and
    // each item keeps a warm-start cache across sweeps: once the other
    // items' selections stop changing, an item's extended target Υ repeats
    // verbatim and the re-solve is served from cache (ARCHITECTURE.md §9).
    let metrics = opts.metrics_ref();
    let ctl = opts.ctl();
    let span = tracing::debug_span!("comparesets_plus_alternation", items = n, sweeps = sweeps);
    let _span_guard = span.enter();
    let mut ws = NompWorkspace::new();
    // The items are immutable for the whole solve, so each one's column
    // grouping is computed once and shared by every warm reuse probe.
    let dedups: Vec<DedupColumns> = if opts.warm_start {
        (0..n).map(|j| DedupColumns::build(ctx.item(j))).collect()
    } else {
        Vec::new()
    };
    // φ(Sⱼ) under each item's current selection, refreshed only when an
    // accept changes the selection — φ is a pure function of the
    // selection, so the cache is bit-identical to recomputing per round.
    let mut phis: Vec<Vec<f64>> = (0..n)
        .map(|j| ctx.space().phi(ctx.item(j), &selections[j].indices))
        .collect();
    'sweeps: for _ in 0..sweeps {
        for i in 0..n {
            // Cancellation granularity: one poll per alternation round.
            // Stopping here keeps the current selections — each completed
            // round only ever improved them (accept-only-if-better), so
            // the early exit is the anytime iterate.
            if ctl.is_cancelled() {
                break 'sweeps;
            }
            if let Some(mm) = metrics {
                SolverMetrics::incr(&mm.alternation_rounds);
            }
            // φ(Sⱼ) of every other item, under its *current* selection.
            let other_phis: Vec<&[f64]> = (0..n)
                .filter(|&j| j != i)
                .map(|j| phis[j].as_slice())
                .collect();

            // Per-item synchronized objective used for accept/reject
            // (Algorithm 1 line 10): Eq. 3 plus μ² Σⱼ Δ(φ(Sᵢ), φ(Sⱼ)).
            let item_plus_cost = |sel: &Selection| {
                let base = crate::objective::item_objective(ctx, i, sel, lambda);
                let phi = ctx.space().phi(ctx.item(i), &sel.indices);
                let coupling: f64 = other_phis.iter().map(|p| sq_distance(&phi, p)).sum();
                base + mu * mu * coupling
            };

            // Υ blocks: Γ with weight λ, then each φ(Sⱼ) with weight μ.
            let mut aspect_targets: Vec<(&[f64], f64)> = Vec::with_capacity(1 + other_phis.len());
            aspect_targets.push((ctx.gamma(), lambda));
            for p in &other_phis {
                aspect_targets.push((p, mu));
            }
            // Warm fast path: probe the cache against the stacked target
            // before paying for the design-matrix build — on stabilised
            // rounds the whole re-solve reduces to this comparison.
            let reused = if opts.warm_start {
                RegressionTask::try_stack_target(ctx.space(), ctx.tau(i), &aspect_targets)
                    .ok()
                    .and_then(|t| warm[i].probe_reuse(&dedups[i], &t, params.m, metrics))
            } else {
                None
            };
            let candidate = if let Some(sel) = reused {
                sel
            } else if opts.warm_start {
                // Session path: the design matrix is parked inside
                // warm[i] between rounds, so stabilised sweeps skip the
                // O(q·rows) assembly and only re-stack the target.
                integer_regression_session_ctl(
                    ctx.space(),
                    ctx.item(i),
                    ctx.tau(i),
                    &aspect_targets,
                    opts.backend,
                    params.m,
                    item_plus_cost,
                    &mut ws,
                    &mut warm[i],
                    ctl,
                )
            } else {
                let task = RegressionTask::build_with(
                    ctx.space(),
                    ctx.item(i),
                    ctx.tau(i),
                    &aspect_targets,
                    opts.backend,
                );
                integer_regression_ctl(&task, params.m, item_plus_cost, &mut ws, ctl)
            };

            // A candidate equal to the current selection can never win the
            // strict `<` accept test (the objective is a pure function of
            // the selection), so the two cost evaluations are skipped —
            // the accept decision is unchanged.
            if candidate != selections[i]
                && item_plus_cost(&candidate) < item_plus_cost(&selections[i])
            {
                if let Some(mm) = metrics {
                    SolverMetrics::incr(&mm.alternation_accepts);
                }
                tracing::trace!("alternation step accepted a better selection for item {i}");
                selections[i] = candidate;
                phis[i] = ctx.space().phi(ctx.item(i), &selections[i].indices);
            }
        }
    }
    selections
}

/// Checked variant of [`solve_comparesets_plus_sweeps_with`].
///
/// The CompaReSetS seed runs through [`solve_comparesets_checked`], so a
/// degenerate item lands as `Err` in its slot and is **excluded from the
/// coupling**: healthy items synchronise among themselves as if the failed
/// item were absent, and the failed slots keep their per-item error. A
/// sweep-step failure on an otherwise-seeded item degrades gracefully —
/// the item keeps its current (valid) selection rather than erroring,
/// matching the accept-only-if-better contract of Algorithm 1.
///
/// On well-posed inputs every slot is `Ok` and bit-identical to the
/// unchecked solver: same seed, same sweeps, same accept decisions.
///
/// # Errors
/// [`CoreError::InvalidParams`] on bad parameters (outer); per-item
/// [`CoreError::Solver`] in the slots (inner);
/// [`CoreError::DeadlineExceeded`] with the feasible best-so-far
/// selections when the options' cancellation token fired mid-solve.
pub fn solve_comparesets_plus_checked(
    ctx: &InstanceContext,
    params: &SelectParams,
    sweeps: usize,
    opts: &SolveOptions,
) -> Result<Vec<Result<Selection, CoreError>>, CoreError> {
    let (lambda, mu) = (params.lambda, params.mu);
    let mut slots = solve_comparesets_checked(ctx, params, opts)?;
    let n = ctx.num_items();
    if n <= 1 || mu == 0.0 {
        return classify_deadline(slots, opts);
    }

    let metrics = opts.metrics_ref();
    let ctl = opts.ctl();
    let mut ws = NompWorkspace::new();
    let mut warm: Vec<RegressionWarm> = (0..n).map(|_| RegressionWarm::new()).collect();
    let dedups: Vec<DedupColumns> = if opts.warm_start {
        (0..n).map(|j| DedupColumns::build(ctx.item(j))).collect()
    } else {
        Vec::new()
    };
    // φ(Sⱼ) per healthy slot (None for failed items), refreshed only when
    // an accept changes the selection — bit-identical to recomputing.
    let mut phis: Vec<Option<Vec<f64>>> = (0..n)
        .map(|j| {
            slots[j]
                .as_ref()
                .ok()
                .map(|sel| ctx.space().phi(ctx.item(j), &sel.indices))
        })
        .collect();
    'sweeps: for _ in 0..sweeps {
        for i in 0..n {
            if ctl.is_cancelled() {
                break 'sweeps;
            }
            if slots[i].is_err() {
                continue;
            }
            if let Some(mm) = metrics {
                SolverMetrics::incr(&mm.alternation_rounds);
            }
            // φ(Sⱼ) of every other *healthy* item under its current
            // selection; failed items contribute no coupling.
            let other_phis: Vec<&[f64]> = (0..n)
                .filter(|&j| j != i)
                .filter_map(|j| phis[j].as_deref())
                .collect();

            let item_plus_cost = |sel: &Selection| {
                let base = crate::objective::item_objective(ctx, i, sel, lambda);
                let phi = ctx.space().phi(ctx.item(i), &sel.indices);
                let coupling: f64 = other_phis.iter().map(|p| sq_distance(&phi, p)).sum();
                base + mu * mu * coupling
            };

            let current = match &slots[i] {
                Ok(sel) => sel.clone(),
                Err(_) => continue,
            };

            let mut aspect_targets: Vec<(&[f64], f64)> = Vec::with_capacity(1 + other_phis.len());
            aspect_targets.push((ctx.gamma(), lambda));
            for p in &other_phis {
                aspect_targets.push((p, mu));
            }
            let reused = if opts.warm_start {
                RegressionTask::try_stack_target(ctx.space(), ctx.tau(i), &aspect_targets)
                    .ok()
                    .and_then(|t| warm[i].probe_reuse(&dedups[i], &t, params.m, metrics))
            } else {
                None
            };
            // A failed build or solve keeps the current valid selection
            // (accept-only-if-better degrades gracefully), so both error
            // channels collapse to `None` here.
            let solved = if let Some(sel) = reused {
                Some(sel)
            } else if opts.warm_start {
                try_integer_regression_session_ctl(
                    ctx.space(),
                    ctx.item(i),
                    ctx.tau(i),
                    &aspect_targets,
                    opts.backend,
                    params.m,
                    item_plus_cost,
                    &mut ws,
                    &mut warm[i],
                    ctl,
                )
                .ok()
            } else {
                match RegressionTask::try_build_with(
                    ctx.space(),
                    ctx.item(i),
                    ctx.tau(i),
                    &aspect_targets,
                    opts.backend,
                ) {
                    Ok(task) => {
                        try_integer_regression_ctl(&task, params.m, item_plus_cost, &mut ws, ctl)
                            .ok()
                    }
                    Err(_) => None,
                }
            };
            if let Some(candidate) = solved {
                // Equal candidates can never win the strict `<` accept
                // test; skip both cost evaluations (decision unchanged).
                if candidate != current && item_plus_cost(&candidate) < item_plus_cost(&current) {
                    if let Some(mm) = metrics {
                        SolverMetrics::incr(&mm.alternation_accepts);
                    }
                    phis[i] = Some(ctx.space().phi(ctx.item(i), &candidate.indices));
                    slots[i] = Ok(candidate);
                }
            }
        }
    }
    classify_deadline(slots, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceContext, Item};
    use crate::objective::{comparesets_objective, comparesets_plus_objective};
    use crate::space::OpinionScheme;
    use comparesets_data::{CategoryPreset, Polarity, ProductId, ReviewId};

    fn params(m: usize, lambda: f64, mu: f64) -> SelectParams {
        SelectParams { m, lambda, mu }
    }

    /// The three-item example of Figure 2: p₁ as in Working Example 1;
    /// p₂/p₃ built so that CompaReSetS+ must pull the selections toward
    /// the shared aspect *quality* (aspect 2).
    fn figure2_ctx() -> InstanceContext {
        use Polarity::{Negative, Positive};
        let p1 = crate::space::fixtures::working_example_item();
        // p2: reviews r8..r17 — two sub-populations: one matching p1's
        // battery/lens profile, one adding quality.
        let p2 = Item::from_mentions(
            ProductId(1),
            vec![
                (ReviewId(8), vec![(0, Positive), (1, Positive)]),
                (ReviewId(9), vec![(0, Negative), (1, Negative)]),
                (ReviewId(10), vec![(0, Negative)]),
                (ReviewId(15), vec![(0, Positive), (2, Positive)]),
                (ReviewId(16), vec![(0, Negative), (2, Negative)]),
                (
                    ReviewId(17),
                    vec![(0, Negative), (1, Positive), (2, Positive)],
                ),
            ],
        );
        // p3: r20, r21 discuss quality (+ price).
        let p3 = Item::from_mentions(
            ProductId(2),
            vec![
                (ReviewId(20), vec![(0, Positive), (2, Positive)]),
                (
                    ReviewId(21),
                    vec![(0, Negative), (2, Negative), (3, Negative)],
                ),
            ],
        );
        InstanceContext::from_items(5, vec![p1, p2, p3], OpinionScheme::Binary)
    }

    #[test]
    fn comparesets_selects_one_set_per_item_within_budget() {
        let ctx = figure2_ctx();
        let sels = solve_comparesets(&ctx, &params(3, 1.0, 0.0));
        assert_eq!(sels.len(), 3);
        for s in &sels {
            assert!(!s.is_empty());
            assert!(s.len() <= 3);
        }
    }

    #[test]
    fn comparesets_achieves_zero_cost_on_target_item() {
        let ctx = figure2_ctx();
        let sels = solve_comparesets(&ctx, &params(3, 1.0, 0.0));
        let cost0 = crate::objective::item_objective(&ctx, 0, &sels[0], 1.0);
        assert!(cost0 < 1e-12, "target item cost {cost0}");
    }

    #[test]
    fn plus_improves_or_matches_the_synchronized_objective() {
        let ctx = figure2_ctx();
        let p = params(3, 1.0, 1.0);
        let base = solve_comparesets(&ctx, &p);
        let plus = solve_comparesets_plus(&ctx, &p);
        let obj_base = comparesets_plus_objective(&ctx, &base, p.lambda, p.mu);
        let obj_plus = comparesets_plus_objective(&ctx, &plus, p.lambda, p.mu);
        assert!(
            obj_plus <= obj_base + 1e-9,
            "plus {obj_plus} vs base {obj_base}"
        );
    }

    #[test]
    fn plus_with_mu_zero_equals_comparesets() {
        let ctx = figure2_ctx();
        let p = params(3, 1.0, 0.0);
        assert_eq!(
            solve_comparesets_plus(&ctx, &p),
            solve_comparesets(&ctx, &p)
        );
    }

    #[test]
    fn plus_synchronizes_shared_aspects() {
        // With a strong μ, the selections of p2 and p3 must overlap on the
        // aspects they can share with p1's selection profile. We check the
        // coupling term strictly decreases vs. the unsynchronized solution.
        let ctx = figure2_ctx();
        let p = params(3, 1.0, 2.0);
        let base = solve_comparesets(&ctx, &p);
        let plus = solve_comparesets_plus_sweeps(&ctx, &p, 2);
        let coupling = |sels: &[Selection]| {
            comparesets_plus_objective(&ctx, sels, p.lambda, p.mu)
                - comparesets_objective(&ctx, sels, p.lambda)
        };
        assert!(
            coupling(&plus) <= coupling(&base) + 1e-9,
            "coupling {} vs {}",
            coupling(&plus),
            coupling(&base)
        );
    }

    #[test]
    fn extra_sweeps_never_hurt() {
        let ctx = figure2_ctx();
        let p = params(3, 1.0, 0.5);
        let one = solve_comparesets_plus_sweeps(&ctx, &p, 1);
        let three = solve_comparesets_plus_sweeps(&ctx, &p, 3);
        let o1 = comparesets_plus_objective(&ctx, &one, p.lambda, p.mu);
        let o3 = comparesets_plus_objective(&ctx, &three, p.lambda, p.mu);
        assert!(o3 <= o1 + 1e-9);
    }

    #[test]
    fn works_on_generated_instances() {
        let d = CategoryPreset::Toy.config(60, 23).generate();
        let inst = d.instances().into_iter().nth(1).unwrap().truncated(4);
        let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
        let p = params(5, 1.0, 0.1);
        let sels = solve_comparesets_plus(&ctx, &p);
        assert_eq!(sels.len(), ctx.num_items());
        for (i, s) in sels.iter().enumerate() {
            assert!(!s.is_empty());
            assert!(s.len() <= 5);
            assert!(s.indices.iter().all(|&r| r < ctx.item(i).num_reviews()));
        }
    }

    #[test]
    fn single_item_instance_reduces_to_comparesets() {
        let p1 = crate::space::fixtures::working_example_item();
        let ctx = InstanceContext::from_items(5, vec![p1], OpinionScheme::Binary);
        let p = params(3, 1.0, 0.7);
        assert_eq!(
            solve_comparesets_plus(&ctx, &p),
            solve_comparesets(&ctx, &p)
        );
    }

    #[test]
    fn checked_solver_matches_unchecked_on_well_posed_input() {
        let ctx = figure2_ctx();
        let p = params(3, 1.0, 0.5);
        let opts = SolveOptions::default();
        let legacy = solve_comparesets(&ctx, &p);
        let checked: Vec<Selection> = solve_comparesets_checked(&ctx, &p, &opts)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(legacy, checked);

        let legacy_plus = solve_comparesets_plus_sweeps(&ctx, &p, 2);
        let checked_plus: Vec<Selection> = solve_comparesets_plus_checked(&ctx, &p, 2, &opts)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(legacy_plus, checked_plus);
    }

    #[test]
    fn checked_solver_rejects_invalid_params_up_front() {
        let ctx = figure2_ctx();
        let opts = SolveOptions::default();
        for bad in [
            params(0, 1.0, 0.1),
            params(3, f64::NAN, 0.1),
            params(3, 1.0, f64::INFINITY),
        ] {
            assert!(matches!(
                solve_comparesets_checked(&ctx, &bad, &opts),
                Err(CoreError::InvalidParams(_))
            ));
            assert!(solve_comparesets_plus_checked(&ctx, &bad, 1, &opts).is_err());
        }
    }
}
