//! Objective functions (Equations 1, 3, 5) and the item distance of §3.1.

use comparesets_linalg::vector::sq_distance;

use crate::instance::{InstanceContext, Selection};

/// Per-item CompaReSetS cost (Equation 3):
/// `Δ(τᵢ, π(Sᵢ)) + λ² Δ(Γ, φ(Sᵢ))`.
pub fn item_objective(ctx: &InstanceContext, i: usize, selection: &Selection, lambda: f64) -> f64 {
    let item = ctx.item(i);
    let pi = ctx.space().pi(item, &selection.indices);
    let phi = ctx.space().phi(item, &selection.indices);
    sq_distance(ctx.tau(i), &pi) + lambda * lambda * sq_distance(ctx.gamma(), &phi)
}

/// Full CompaReSetS objective (Equation 1): the sum of per-item costs.
pub fn comparesets_objective(ctx: &InstanceContext, selections: &[Selection], lambda: f64) -> f64 {
    assert_eq!(selections.len(), ctx.num_items());
    (0..ctx.num_items())
        .map(|i| item_objective(ctx, i, &selections[i], lambda))
        .sum()
}

/// Full CompaReSetS+ objective (Equation 5): Equation 1 plus the pairwise
/// aspect coupling `μ² Σᵢ<ⱼ Δ(φ(Sᵢ), φ(Sⱼ))`.
pub fn comparesets_plus_objective(
    ctx: &InstanceContext,
    selections: &[Selection],
    lambda: f64,
    mu: f64,
) -> f64 {
    let base = comparesets_objective(ctx, selections, lambda);
    let phis: Vec<Vec<f64>> = (0..ctx.num_items())
        .map(|i| ctx.space().phi(ctx.item(i), &selections[i].indices))
        .collect();
    let mut coupling = 0.0;
    for i in 0..phis.len() {
        for j in (i + 1)..phis.len() {
            coupling += sq_distance(&phis[i], &phis[j]);
        }
    }
    base + mu * mu * coupling
}

/// Pairwise item distance `d_ij` of §3.1, computed after a CompaReSetS+
/// solve: `Δ(τᵢ,π(Sᵢ)) + Δ(τⱼ,π(Sⱼ)) + λ²Δ(Γ,φ(Sᵢ)) + λ²Δ(Γ,φ(Sⱼ)) +
/// μ²Δ(φ(Sᵢ),φ(Sⱼ))`.
pub fn pair_distance(
    ctx: &InstanceContext,
    selections: &[Selection],
    i: usize,
    j: usize,
    lambda: f64,
    mu: f64,
) -> f64 {
    let cost_i = item_objective(ctx, i, &selections[i], lambda);
    let cost_j = item_objective(ctx, j, &selections[j], lambda);
    let phi_i = ctx.space().phi(ctx.item(i), &selections[i].indices);
    let phi_j = ctx.space().phi(ctx.item(j), &selections[j].indices);
    cost_i + cost_j + mu * mu * sq_distance(&phi_i, &phi_j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceContext, Item, Selection};
    use crate::space::OpinionScheme;
    use comparesets_data::{Polarity, ProductId, ReviewId};

    fn two_item_ctx() -> InstanceContext {
        use Polarity::{Negative, Positive};
        let item0 = Item::from_mentions(
            ProductId(0),
            vec![
                (ReviewId(0), vec![(0, Positive)]),
                (ReviewId(1), vec![(0, Negative), (1, Positive)]),
            ],
        );
        let item1 = Item::from_mentions(
            ProductId(1),
            vec![
                (ReviewId(2), vec![(0, Positive)]),
                (ReviewId(3), vec![(1, Negative)]),
            ],
        );
        InstanceContext::from_items(2, vec![item0, item1], OpinionScheme::Binary)
    }

    #[test]
    fn full_selection_of_target_item_has_zero_item_cost() {
        let ctx = two_item_ctx();
        // Selecting all reviews of the target reproduces τ₀ and Γ exactly.
        let s = Selection::new(vec![0, 1]);
        let cost = item_objective(&ctx, 0, &s, 1.0);
        assert!(cost.abs() < 1e-12, "cost {cost}");
    }

    #[test]
    fn empty_selection_costs_the_squared_targets() {
        let ctx = two_item_ctx();
        let s = Selection::default();
        let tau_sq: f64 = ctx.tau(0).iter().map(|v| v * v).sum();
        let gamma_sq: f64 = ctx.gamma().iter().map(|v| v * v).sum();
        let cost = item_objective(&ctx, 0, &s, 2.0);
        assert!((cost - (tau_sq + 4.0 * gamma_sq)).abs() < 1e-12);
    }

    #[test]
    fn lambda_zero_ignores_aspects() {
        let ctx = two_item_ctx();
        let s = Selection::new(vec![0]);
        let c0 = item_objective(&ctx, 0, &s, 0.0);
        let item = ctx.item(0);
        let pi = ctx.space().pi(item, &s.indices);
        assert!((c0 - sq_distance(ctx.tau(0), &pi)).abs() < 1e-12);
    }

    #[test]
    fn objective_sums_items() {
        let ctx = two_item_ctx();
        let sels = vec![Selection::new(vec![0]), Selection::new(vec![1])];
        let total = comparesets_objective(&ctx, &sels, 1.0);
        let sum = item_objective(&ctx, 0, &sels[0], 1.0) + item_objective(&ctx, 1, &sels[1], 1.0);
        assert!((total - sum).abs() < 1e-12);
    }

    #[test]
    fn plus_objective_adds_nonnegative_coupling() {
        let ctx = two_item_ctx();
        let sels = vec![Selection::new(vec![0]), Selection::new(vec![1])];
        let base = comparesets_objective(&ctx, &sels, 1.0);
        let plus = comparesets_plus_objective(&ctx, &sels, 1.0, 0.5);
        assert!(plus >= base);
        // μ = 0 collapses to Equation 1.
        let plus0 = comparesets_plus_objective(&ctx, &sels, 1.0, 0.0);
        assert!((plus0 - base).abs() < 1e-12);
    }

    #[test]
    fn coupling_is_zero_for_identical_aspect_sets() {
        let ctx = two_item_ctx();
        // Review 0 of both items discusses exactly aspect 0 → φ identical.
        let sels = vec![Selection::new(vec![0]), Selection::new(vec![0])];
        let base = comparesets_objective(&ctx, &sels, 1.0);
        let plus = comparesets_plus_objective(&ctx, &sels, 1.0, 10.0);
        assert!((plus - base).abs() < 1e-12);
    }

    #[test]
    fn pair_distance_is_symmetric() {
        let ctx = two_item_ctx();
        let sels = vec![Selection::new(vec![0]), Selection::new(vec![1])];
        let dij = pair_distance(&ctx, &sels, 0, 1, 1.0, 0.1);
        let dji = pair_distance(&ctx, &sels, 1, 0, 1.0, 0.1);
        assert!((dij - dji).abs() < 1e-12);
        assert!(dij >= 0.0);
    }

    #[test]
    #[should_panic]
    fn objective_requires_matching_selection_count() {
        let ctx = two_item_ctx();
        let _ = comparesets_objective(&ctx, &[Selection::default()], 1.0);
    }
}
