//! The greedy and random baselines of §4.1.2.
//!
//! * `CompaReSetS_Greedy` — "greedily selects reviews one-by-one such that
//!   the selected review minimizes the overall distance cost (i.e.,
//!   Equation 3)".
//! * `Random` — "randomly samples review one-by-one until m reviews have
//!   been selected".

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::instance::{InstanceContext, Selection};
use crate::objective::item_objective;
use crate::SelectParams;

/// Greedy baseline: per item, repeatedly add the review that minimises the
/// per-item Equation 3 cost, one-by-one, until exactly `min(m, |ℛᵢ|)`
/// reviews are selected (§4.1.2 — the paper's greedy always fills the
/// budget; it has no early-stopping rule).
#[allow(clippy::needless_range_loop)] // index loops read clearest in numerical kernels
pub fn solve_greedy(ctx: &InstanceContext, params: &SelectParams) -> Vec<Selection> {
    (0..ctx.num_items())
        .map(|i| {
            let item = ctx.item(i);
            let n = item.num_reviews();
            let mut chosen: Vec<usize> = Vec::new();
            let mut in_set = vec![false; n];
            for _ in 0..params.m.min(n) {
                let mut best: Option<(f64, usize)> = None;
                for r in 0..n {
                    if in_set[r] {
                        continue;
                    }
                    let mut candidate = chosen.clone();
                    candidate.push(r);
                    let sel = Selection::new(candidate);
                    let cost = item_objective(ctx, i, &sel, params.lambda);
                    if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                        best = Some((cost, r));
                    }
                }
                let Some((_, r)) = best else { break };
                chosen.push(r);
                in_set[r] = true;
            }
            Selection::new(chosen)
        })
        .collect()
}

/// Random baseline: uniformly sample `min(m, |ℛᵢ|)` reviews per item.
pub fn solve_random(ctx: &InstanceContext, m: usize, seed: u64) -> Vec<Selection> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..ctx.num_items())
        .map(|i| {
            let n = ctx.item(i).num_reviews();
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            idx.truncate(m.min(n));
            Selection::new(idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceContext;
    use crate::space::OpinionScheme;
    use comparesets_data::CategoryPreset;

    fn ctx() -> InstanceContext {
        let d = CategoryPreset::Clothing.config(60, 31).generate();
        let inst = d.instances().into_iter().next().unwrap().truncated(3);
        InstanceContext::build(&d, &inst, OpinionScheme::Binary)
    }

    #[test]
    fn greedy_respects_budget_and_improves_over_empty() {
        let c = ctx();
        let p = SelectParams {
            m: 3,
            lambda: 1.0,
            mu: 0.0,
        };
        let sels = solve_greedy(&c, &p);
        assert_eq!(sels.len(), c.num_items());
        for (i, s) in sels.iter().enumerate() {
            assert!(!s.is_empty());
            assert!(s.len() <= 3);
            let empty = Selection::default();
            assert!(item_objective(&c, i, s, 1.0) <= item_objective(&c, i, &empty, 1.0) + 1e-12);
        }
    }

    #[test]
    fn greedy_first_pick_is_single_best_review() {
        let c = ctx();
        let p = SelectParams {
            m: 1,
            lambda: 1.0,
            mu: 0.0,
        };
        let sels = solve_greedy(&c, &p);
        for (i, s) in sels.iter().enumerate() {
            assert_eq!(s.len(), 1);
            let cost = item_objective(&c, i, s, 1.0);
            for r in 0..c.item(i).num_reviews() {
                let alt = Selection::new(vec![r]);
                assert!(cost <= item_objective(&c, i, &alt, 1.0) + 1e-12);
            }
        }
    }

    #[test]
    fn greedy_on_working_example_is_suboptimal_or_optimal_but_valid() {
        // The paper notes greedy underperforms Integer-Regression; we only
        // require validity, not optimality.
        let item = crate::space::fixtures::working_example_item();
        let c = InstanceContext::from_items(5, vec![item], OpinionScheme::Binary);
        let p = SelectParams {
            m: 3,
            lambda: 1.0,
            mu: 0.0,
        };
        let sels = solve_greedy(&c, &p);
        assert!(sels[0].len() <= 3);
        assert!(!sels[0].is_empty());
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let c = ctx();
        let a = solve_random(&c, 3, 99);
        let b = solve_random(&c, 3, 99);
        let other = solve_random(&c, 3, 100);
        assert_eq!(a, b);
        // All items have at least one review here; budget respected.
        for s in &a {
            assert!(!s.is_empty());
            assert!(s.len() <= 3);
        }
        // Different seeds almost surely differ somewhere.
        assert_ne!(a, other);
    }

    #[test]
    fn random_with_large_m_takes_all_reviews() {
        let c = ctx();
        let sels = solve_random(&c, 10_000, 5);
        for (i, s) in sels.iter().enumerate() {
            assert_eq!(s.len(), c.item(i).num_reviews());
        }
    }
}
