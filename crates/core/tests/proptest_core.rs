//! Property-based tests for the selection algorithms.

use comparesets_core::{
    comparesets_objective, comparesets_plus_objective, item_objective, solve, Algorithm,
    InstanceContext, Item, OpinionScheme, ReviewFeature, SelectParams, Selection,
};
use comparesets_data::{Polarity, ProductId, ReviewId};
use proptest::prelude::*;

/// Random instance generator: 2–4 items, each with 2–8 reviews over
/// z = 4 aspects with random polarities.
fn instance() -> impl Strategy<Value = InstanceContext> {
    let mention = (
        0usize..4,
        prop_oneof![
            Just(Polarity::Positive),
            Just(Polarity::Negative),
            Just(Polarity::Neutral),
        ],
    );
    let review = proptest::collection::vec(mention, 1..4);
    let item_reviews = proptest::collection::vec(review, 2..8);
    proptest::collection::vec(item_reviews, 2..5).prop_map(|items| {
        let items: Vec<Item> = items
            .into_iter()
            .enumerate()
            .map(|(pi, reviews)| {
                let mut rid = 0u32;
                Item {
                    product: ProductId(pi as u32),
                    review_ids: reviews
                        .iter()
                        .map(|_| {
                            rid += 1;
                            ReviewId(pi as u32 * 1000 + rid)
                        })
                        .collect(),
                    features: reviews.into_iter().map(ReviewFeature::new).collect(),
                }
            })
            .collect();
        InstanceContext::from_items(4, items, OpinionScheme::Binary)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_produces_valid_selections(
        ctx in instance(),
        m in 1usize..5,
        seed in 0u64..50,
    ) {
        let params = SelectParams { m, lambda: 1.0, mu: 0.1 };
        for alg in Algorithm::ALL {
            let sels = solve(&ctx, alg, &params, seed);
            prop_assert_eq!(sels.len(), ctx.num_items());
            for (i, s) in sels.iter().enumerate() {
                prop_assert!(!s.is_empty(), "{:?} empty on item {}", alg, i);
                prop_assert!(s.len() <= m, "{:?} over budget", alg);
                prop_assert!(s.indices.iter().all(|&r| r < ctx.item(i).num_reviews()));
                // Indices sorted + unique by construction.
                prop_assert!(s.indices.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn objectives_are_nonnegative_and_consistent(
        ctx in instance(),
        m in 1usize..4,
    ) {
        let params = SelectParams { m, lambda: 1.0, mu: 0.5 };
        let sels = solve(&ctx, Algorithm::CompareSets, &params, 0);
        let eq1 = comparesets_objective(&ctx, &sels, params.lambda);
        let eq5 = comparesets_plus_objective(&ctx, &sels, params.lambda, params.mu);
        prop_assert!(eq1 >= 0.0);
        prop_assert!(eq5 >= eq1 - 1e-12, "coupling must be non-negative");
        let per_item: f64 = (0..ctx.num_items())
            .map(|i| item_objective(&ctx, i, &sels[i], params.lambda))
            .sum();
        prop_assert!((per_item - eq1).abs() < 1e-9);
    }

    #[test]
    fn comparesets_plus_never_worse_on_eq5(
        ctx in instance(),
        m in 1usize..4,
    ) {
        let params = SelectParams { m, lambda: 1.0, mu: 1.0 };
        let base = solve(&ctx, Algorithm::CompareSets, &params, 0);
        let plus = solve(&ctx, Algorithm::CompareSetsPlus, &params, 0);
        let ob = comparesets_plus_objective(&ctx, &base, params.lambda, params.mu);
        let op = comparesets_plus_objective(&ctx, &plus, params.lambda, params.mu);
        prop_assert!(op <= ob + 1e-9, "plus {} worse than base {}", op, ob);
    }

    #[test]
    fn full_selection_minimises_item_objective_to_zero_for_target(
        ctx in instance(),
    ) {
        // Selecting all reviews of the target item reproduces τ and Γ by
        // definition, so its Equation-3 cost is exactly zero.
        let full = Selection::new((0..ctx.item(0).num_reviews()).collect());
        let cost = item_objective(&ctx, 0, &full, 1.0);
        prop_assert!(cost < 1e-12, "cost {}", cost);
    }

    #[test]
    fn budget_monotonicity_of_integer_regression(
        ctx in instance(),
    ) {
        // A larger budget can only improve (or tie) the achieved per-item
        // objective for CompaReSetS, since any smaller selection remains
        // feasible and the solver evaluates all rounding masses ≤ m.
        let mut prev = f64::INFINITY;
        for m in 1..=4 {
            let params = SelectParams { m, lambda: 1.0, mu: 0.0 };
            let sels = solve(&ctx, Algorithm::CompareSets, &params, 0);
            let cost = comparesets_objective(&ctx, &sels, params.lambda);
            // Heuristic, so allow a small tolerance for rounding artifacts.
            prop_assert!(cost <= prev + 0.35, "m={} cost {} prev {}", m, cost, prev);
            prev = prev.min(cost);
        }
    }

    #[test]
    fn unary_scale_pi_values_bounded(
        ctx_reviews in proptest::collection::vec(
            proptest::collection::vec((0usize..3, prop_oneof![
                Just(Polarity::Positive), Just(Polarity::Negative)
            ]), 1..3),
            1..6,
        ),
    ) {
        let item = Item {
            product: ProductId(0),
            review_ids: (0..ctx_reviews.len() as u32).map(ReviewId).collect(),
            features: ctx_reviews.into_iter().map(ReviewFeature::new).collect(),
        };
        let ctx = InstanceContext::from_items(3, vec![item], OpinionScheme::UnaryScale);
        let all: Vec<usize> = (0..ctx.item(0).num_reviews()).collect();
        let pi = ctx.space().pi(ctx.item(0), &all);
        for v in pi {
            prop_assert!((0.0..=1.0).contains(&v), "sigmoid output {}", v);
        }
    }
}
