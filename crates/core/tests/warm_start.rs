//! Warm-start pinning tests: carrying per-item warm-start caches across
//! alternating sweeps and incremental re-solves must never change a
//! selection. Every solver that threads [`RegressionWarm`] state is
//! compared byte-for-byte against its cold-start twin, sequentially and
//! in parallel, and the v3 warm-start counters are checked to actually
//! fire on multi-sweep workloads.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use comparesets_core::{
    solve_comparesets_plus_checked, solve_comparesets_plus_sweeps_with, solve_comparesets_with,
    solve_crs_with, IncrementalSession, InstanceContext, OpinionScheme, ReviewFeature,
    SelectParams, Selection, SolveOptions, SolverMetrics,
};
use comparesets_data::{CategoryPreset, Polarity, ReviewId};

fn contexts() -> Vec<InstanceContext> {
    let dataset = CategoryPreset::Cellphone.config(120, 29).generate();
    dataset
        .instances()
        .into_iter()
        .take(3)
        .map(|inst| InstanceContext::build(&dataset, &inst.truncated(5), OpinionScheme::Binary))
        .collect()
}

fn cold() -> SolveOptions {
    SolveOptions::default().with_warm_start(false)
}

#[test]
fn warm_start_defaults_on_and_the_builder_flips_it() {
    assert!(SolveOptions::default().warm_start);
    assert!(SolveOptions::parallel().warm_start);
    assert!(!cold().warm_start);
}

#[test]
fn warm_sweeps_select_identically_to_cold_sweeps() {
    let params = SelectParams::default();
    for ctx in &contexts() {
        for sweeps in 1..=4 {
            for opts in [SolveOptions::sequential(), SolveOptions::with_threads(2)] {
                let warm = solve_comparesets_plus_sweeps_with(ctx, &params, sweeps, &opts);
                let coldsel = solve_comparesets_plus_sweeps_with(
                    ctx,
                    &params,
                    sweeps,
                    &opts.clone().with_warm_start(false),
                );
                assert_eq!(warm, coldsel, "sweeps={sweeps} drifted under warm starts");
            }
        }
    }
}

#[test]
fn warm_equals_cold_on_every_backend() {
    // The warm==cold identity must hold whether the design matrices are
    // dense, CSC, or auto-selected — the warm engine's sparse-aware
    // correlation downdates and the parked-matrix reuse may change
    // nothing but wall-clock (crates/core/tests/backend_equivalence.rs
    // pins cross-backend identity; this pins warm==cold per backend).
    use comparesets_core::MatrixBackend;
    let params = SelectParams::default();
    for ctx in &contexts() {
        for backend in [MatrixBackend::Dense, MatrixBackend::Sparse] {
            for sweeps in [1, 3] {
                let opts = SolveOptions::default().with_backend(backend);
                let warm = solve_comparesets_plus_sweeps_with(ctx, &params, sweeps, &opts);
                let coldsel = solve_comparesets_plus_sweeps_with(
                    ctx,
                    &params,
                    sweeps,
                    &opts.clone().with_warm_start(false),
                );
                assert_eq!(
                    warm, coldsel,
                    "warm drifted from cold on {backend:?} at sweeps={sweeps}"
                );
            }
        }
    }
}

#[test]
fn checked_warm_sweeps_select_identically_to_cold_sweeps() {
    let params = SelectParams::default();
    for ctx in &contexts() {
        for sweeps in [1, 3] {
            let warm: Vec<Selection> =
                solve_comparesets_plus_checked(ctx, &params, sweeps, &SolveOptions::default())
                    .unwrap()
                    .into_iter()
                    .map(|r| r.unwrap())
                    .collect();
            let coldsel: Vec<Selection> =
                solve_comparesets_plus_checked(ctx, &params, sweeps, &cold())
                    .unwrap()
                    .into_iter()
                    .map(|r| r.unwrap())
                    .collect();
            assert_eq!(warm, coldsel, "checked sweeps={sweeps} drifted");
        }
    }
}

#[test]
fn pooled_parallel_fanout_matches_sequential_exactly() {
    // The rayon fan-outs now borrow thread-local pooled workspaces; the
    // pooling must be invisible in the results of every batch solver.
    let params = SelectParams::default();
    for ctx in &contexts() {
        let seq = SolveOptions::sequential();
        let par = SolveOptions::with_threads(2);
        assert_eq!(
            solve_comparesets_with(ctx, &params, &seq),
            solve_comparesets_with(ctx, &params, &par),
        );
        assert_eq!(solve_crs_with(ctx, 3, &seq), solve_crs_with(ctx, 3, &par));
    }
}

#[test]
fn incremental_session_with_warm_starts_matches_cold_session() {
    let ctx = contexts().into_iter().next().unwrap();
    let params = SelectParams::default();
    let mut warm = IncrementalSession::with_options(ctx.clone(), params, SolveOptions::default());
    let mut coldsess = IncrementalSession::with_options(ctx, params, cold());
    assert_eq!(warm.selections(), coldsess.selections());

    for k in 0..6u32 {
        let item = (k % 3) as usize;
        let id = ReviewId(800_000 + k);
        let pol = if k % 2 == 0 {
            Polarity::Positive
        } else {
            Polarity::Negative
        };
        let feature = ReviewFeature::new(vec![((k % 4) as usize, pol)]);
        warm.add_review(item, id, feature.clone());
        coldsess.add_review(item, id, feature);
        assert_eq!(
            warm.selections(),
            coldsess.selections(),
            "selections drifted after ingest #{k}"
        );
    }

    warm.refresh();
    coldsess.refresh();
    assert_eq!(warm.selections(), coldsess.selections());
}

#[test]
fn warm_counters_fire_on_multi_sweep_solves_and_identities_hold() {
    let params = SelectParams::default();
    let metrics = Arc::new(SolverMetrics::new());
    let opts = SolveOptions::default().with_metrics(Arc::clone(&metrics));
    for ctx in &contexts() {
        solve_comparesets_plus_sweeps_with(ctx, &params, 4, &opts);
    }
    let snap = metrics.snapshot();
    assert!(
        snap.warm_start_hits > 0,
        "multi-sweep alternation never reused a warm trajectory"
    );
    assert!(
        snap.corr_incremental_updates > 0,
        "warm pursuits never downdated the correlation vector"
    );
    assert_eq!(
        snap.nnls_refits,
        snap.nomp_iterations - snap.warm_start_hits
    );
    assert_eq!(snap.nomp_pursuits, snap.integer_regressions);
    assert!(snap.gram_cache_hits <= snap.nnls_refits);
}

#[test]
fn cold_solves_never_touch_the_warm_counters() {
    let params = SelectParams::default();
    let metrics = Arc::new(SolverMetrics::new());
    let opts = cold().with_metrics(Arc::clone(&metrics));
    for ctx in &contexts() {
        solve_comparesets_plus_sweeps_with(ctx, &params, 3, &opts);
    }
    let snap = metrics.snapshot();
    assert_eq!(snap.warm_start_hits, 0);
    assert_eq!(snap.warm_start_truncations, 0);
    assert_eq!(snap.corr_incremental_updates, 0);
    assert_eq!(snap.corr_exact_recomputes, 0);
    assert_eq!(snap.nnls_refits, snap.nomp_iterations);
}
