//! Backend invariance pinning for the solver stack: the selections of
//! every solver must be *identical* — not merely equivalent — whether
//! the design matrices materialise densely, as CSC, or under the
//! [`MatrixBackend::Auto`] density rule. The backend is a pure
//! wall-clock/memory decision; this suite is what
//! [`comparesets_core::SolveOptions::backend`] points at for the claim.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_core::{
    solve_comparesets_plus_sweeps_with, solve_comparesets_with, solve_crs_with, IncrementalSession,
    InstanceContext, MatrixBackend, OpinionScheme, RegressionTask, ReviewFeature, SelectParams,
    SolveOptions, DENSITY_CROSSOVER,
};
use comparesets_data::{CategoryPreset, Polarity, ReviewId};

const BACKENDS: [MatrixBackend; 3] = [
    MatrixBackend::Auto,
    MatrixBackend::Dense,
    MatrixBackend::Sparse,
];

fn contexts() -> Vec<InstanceContext> {
    let dataset = CategoryPreset::Cellphone.config(140, 31).generate();
    dataset
        .instances()
        .into_iter()
        .take(3)
        .map(|inst| InstanceContext::build(&dataset, &inst.truncated(5), OpinionScheme::Binary))
        .collect()
}

fn opts(backend: MatrixBackend) -> SolveOptions {
    SolveOptions::default().with_backend(backend)
}

#[test]
fn forced_backends_actually_force_the_representation() {
    let item = comparesets_core::Item::from_mentions(
        comparesets_data::ProductId(0),
        vec![
            (ReviewId(0), vec![(0, Polarity::Positive)]),
            (ReviewId(1), vec![(1, Polarity::Negative)]),
        ],
    );
    let ctx = InstanceContext::from_items(2, vec![item], OpinionScheme::Binary);
    let dense = RegressionTask::build_with(
        ctx.space(),
        ctx.item(0),
        ctx.tau(0),
        &[],
        MatrixBackend::Dense,
    );
    let sparse = RegressionTask::build_with(
        ctx.space(),
        ctx.item(0),
        ctx.tau(0),
        &[],
        MatrixBackend::Sparse,
    );
    assert!(!dense.matrix.is_sparse());
    assert!(sparse.matrix.is_sparse());
    // Same numbers either way.
    assert_eq!(dense.matrix.rows(), sparse.matrix.rows());
    assert_eq!(dense.matrix.cols(), sparse.matrix.cols());
    for r in 0..dense.matrix.rows() {
        for c in 0..dense.matrix.cols() {
            assert_eq!(
                dense.matrix.get(r, c).to_bits(),
                sparse.matrix.get(r, c).to_bits()
            );
        }
    }
    // Auto follows the documented density rule.
    let auto = RegressionTask::build_with(
        ctx.space(),
        ctx.item(0),
        ctx.tau(0),
        &[],
        MatrixBackend::Auto,
    );
    let density = {
        let (rows, cols) = (auto.matrix.rows(), auto.matrix.cols());
        let mut nnz = 0usize;
        for r in 0..rows {
            for c in 0..cols {
                if auto.matrix.get(r, c) != 0.0 {
                    nnz += 1;
                }
            }
        }
        nnz as f64 / (rows * cols) as f64
    };
    assert_eq!(auto.matrix.is_sparse(), density < DENSITY_CROSSOVER);
}

#[test]
fn comparesets_selections_are_backend_invariant() {
    let params = SelectParams::default();
    for ctx in &contexts() {
        let baseline = solve_comparesets_with(ctx, &params, &opts(MatrixBackend::Auto));
        for backend in BACKENDS {
            assert_eq!(
                baseline,
                solve_comparesets_with(ctx, &params, &opts(backend)),
                "CompaReSetS drifted under {backend:?}"
            );
        }
    }
}

#[test]
fn plus_sweeps_are_backend_invariant_warm_and_cold() {
    let params = SelectParams::default();
    for ctx in &contexts() {
        for sweeps in [1, 3] {
            let baseline = solve_comparesets_plus_sweeps_with(
                ctx,
                &params,
                sweeps,
                &opts(MatrixBackend::Dense),
            );
            for backend in BACKENDS {
                for warm in [true, false] {
                    let o = opts(backend).with_warm_start(warm);
                    assert_eq!(
                        baseline,
                        solve_comparesets_plus_sweeps_with(ctx, &params, sweeps, &o),
                        "plus sweeps={sweeps} drifted under {backend:?} warm={warm}"
                    );
                }
            }
        }
    }
}

#[test]
fn crs_is_backend_invariant() {
    for ctx in &contexts() {
        let baseline = solve_crs_with(ctx, 3, &opts(MatrixBackend::Dense));
        for backend in BACKENDS {
            assert_eq!(baseline, solve_crs_with(ctx, 3, &opts(backend)));
        }
    }
}

#[test]
fn incremental_sessions_are_backend_invariant_across_ingest() {
    // The sparse session grows CSC columns in place on appends; the dense
    // and forced-sparse rebuild paths must land on identical selections
    // after every event.
    let ctx = contexts().into_iter().next().unwrap();
    let params = SelectParams::default();
    let mut sessions: Vec<IncrementalSession> = BACKENDS
        .iter()
        .map(|&b| IncrementalSession::with_options(ctx.clone(), params, opts(b)))
        .collect();

    let n = ctx.num_items() as u32;
    for k in 0..8u32 {
        let item = (k % n) as usize;
        let id = ReviewId(900_000 + k);
        let pol = if k % 2 == 0 {
            Polarity::Positive
        } else {
            Polarity::Negative
        };
        let feature = ReviewFeature::new(vec![((k % 4) as usize, pol)]);
        for s in sessions.iter_mut() {
            s.add_review(item, id, feature.clone());
        }
        let baseline = sessions[0].selections().to_vec();
        for (s, b) in sessions.iter().zip(BACKENDS.iter()) {
            assert_eq!(
                baseline,
                s.selections(),
                "incremental drifted under {b:?} after ingest #{k}"
            );
        }
    }
    for s in sessions.iter_mut() {
        s.refresh();
    }
    let baseline = sessions[0].selections().to_vec();
    for s in &sessions {
        assert_eq!(baseline, s.selections());
    }
}
