//! Fault injection at the batch-solver level: a degenerate item must land
//! as a per-item `Err` in its slot — with the failing item's index and a
//! typed linalg cause — while every other item still solves. Parallel and
//! sequential runs must agree slot for slot.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_core::{
    solve_checked, solve_comparesets_checked, solve_comparesets_plus_checked, solve_crs_checked,
    Algorithm, CoreError, InstanceContext, Item, OpinionScheme, SelectParams, Selection,
    SolveOptions,
};
use comparesets_data::{Polarity, ProductId, ReviewId};
use comparesets_linalg::LinalgError;

fn simple_item(product: u32) -> Item {
    Item::from_mentions(
        ProductId(product),
        vec![
            (ReviewId(10 * product), vec![(0, Polarity::Positive)]),
            (ReviewId(10 * product + 1), vec![(1, Polarity::Negative)]),
            (
                ReviewId(10 * product + 2),
                vec![(0, Polarity::Positive), (1, Polarity::Negative)],
            ),
        ],
    )
}

/// Three items where item 1's opinion target τ₁ is poisoned with NaN.
fn contaminated_context() -> InstanceContext {
    let items = vec![simple_item(0), simple_item(1), simple_item(2)];
    let z = 2;
    let space_probe = InstanceContext::from_items(z, items.clone(), OpinionScheme::Binary);
    let mut taus: Vec<Vec<f64>> = (0..3).map(|i| space_probe.tau(i).to_vec()).collect();
    taus[1][0] = f64::NAN;
    let gamma = space_probe.gamma().to_vec();
    InstanceContext::with_targets(z, items, OpinionScheme::Binary, taus, gamma)
}

fn assert_slot_pattern(slots: &[Result<Selection, CoreError>], what: &str) {
    assert_eq!(slots.len(), 3, "{what}: slot count");
    assert!(slots[0].is_ok(), "{what}: item 0 should solve: {slots:?}");
    assert!(slots[2].is_ok(), "{what}: item 2 should solve: {slots:?}");
    match &slots[1] {
        Err(CoreError::Solver { item, source }) => {
            assert_eq!(*item, 1, "{what}: failing item index");
            assert!(
                matches!(source, LinalgError::NonFinite { .. }),
                "{what}: expected NonFinite cause, got {source:?}"
            );
        }
        other => panic!("{what}: expected Solver error in slot 1, got {other:?}"),
    }
    // Healthy items still produce non-empty, in-budget selections.
    for i in [0, 2] {
        let sel = slots[i].as_ref().unwrap();
        assert!(!sel.is_empty(), "{what}: item {i} selection empty");
        assert!(sel.len() <= 3, "{what}: item {i} over budget");
    }
}

#[test]
fn nan_target_poisons_only_its_own_slot() {
    let ctx = contaminated_context();
    let params = SelectParams::default();
    let seq = solve_comparesets_checked(&ctx, &params, &SolveOptions::sequential()).unwrap();
    assert_slot_pattern(&seq, "comparesets seq");
}

#[test]
fn crs_isolates_the_degenerate_item() {
    let ctx = contaminated_context();
    let slots = solve_crs_checked(&ctx, 3, &SolveOptions::sequential()).unwrap();
    assert_slot_pattern(&slots, "crs seq");
}

#[test]
fn plus_sweeps_complete_despite_a_poisoned_item() {
    let ctx = contaminated_context();
    let params = SelectParams::default();
    let slots =
        solve_comparesets_plus_checked(&ctx, &params, 2, &SolveOptions::sequential()).unwrap();
    assert_slot_pattern(&slots, "comparesets+ seq");
}

#[test]
fn parallel_and_sequential_agree_slot_for_slot_under_faults() {
    let ctx = contaminated_context();
    let params = SelectParams::default();
    let seq = solve_comparesets_checked(&ctx, &params, &SolveOptions::sequential()).unwrap();
    for opts in [SolveOptions::parallel(), SolveOptions::with_threads(2)] {
        let par = solve_comparesets_checked(&ctx, &params, &opts).unwrap();
        assert_eq!(seq.len(), par.len());
        for (i, (s, p)) in seq.iter().zip(par.iter()).enumerate() {
            match (s, p) {
                (Ok(a), Ok(b)) => assert_eq!(a.indices, b.indices, "item {i} {opts:?}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "item {i} {opts:?}"),
                (a, b) => panic!("item {i} {opts:?}: seq {a:?} vs par {b:?}"),
            }
        }
    }
}

#[test]
fn solve_checked_covers_every_algorithm_under_faults() {
    let ctx = contaminated_context();
    let params = SelectParams::default();
    let opts = SolveOptions::sequential();
    for alg in Algorithm::ALL {
        let slots = solve_checked(&ctx, alg, &params, 7, &opts).unwrap();
        assert_eq!(slots.len(), 3, "{alg:?}");
        match alg {
            // The regression-based solvers see τ₁ and must classify it.
            Algorithm::Crs | Algorithm::CompareSets | Algorithm::CompareSetsPlus => {
                assert_slot_pattern(&slots, alg.name());
            }
            // Random never touches τ; greedy scans cost values that go NaN
            // but its scan is total, so both complete without erroring.
            Algorithm::Random | Algorithm::CompareSetsGreedy => {
                assert!(
                    slots.iter().all(Result::is_ok),
                    "{alg:?} should not fail: {slots:?}"
                );
            }
        }
    }
}

#[test]
fn invalid_params_reject_before_any_item_solves() {
    let ctx = contaminated_context();
    let opts = SolveOptions::sequential();
    for bad in [
        SelectParams {
            m: 0,
            ..SelectParams::default()
        },
        SelectParams {
            lambda: f64::NAN,
            ..SelectParams::default()
        },
        SelectParams {
            mu: f64::INFINITY,
            ..SelectParams::default()
        },
    ] {
        for alg in Algorithm::ALL {
            assert!(
                matches!(
                    solve_checked(&ctx, alg, &bad, 7, &opts),
                    Err(CoreError::InvalidParams(_))
                ),
                "{alg:?} with {bad:?}"
            );
        }
    }
}

#[test]
fn error_chain_is_readable_end_to_end() {
    let ctx = contaminated_context();
    let params = SelectParams::default();
    let slots = solve_comparesets_checked(&ctx, &params, &SolveOptions::sequential()).unwrap();
    let err = slots[1].as_ref().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("item 1"), "{msg}");
    use std::error::Error;
    let source = err.source().expect("solver errors chain to linalg");
    assert!(
        source.to_string().contains("non-finite"),
        "source: {source}"
    );
}
