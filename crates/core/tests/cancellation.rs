//! Anytime semantics of cancellation at the core level.
//!
//! Three contracts (ARCHITECTURE.md §8):
//!
//! 1. **No-op tokens are free**: an installed token that never fires
//!    leaves every solver's selections bit-identical to running without
//!    one, sequential and parallel alike.
//! 2. **Feasibility**: whenever a checked solver reports
//!    `DeadlineExceeded`, `best_so_far` has one selection per item, each
//!    non-empty, within budget, and indexing real reviews — no matter
//!    where the token fired.
//! 3. **More deadline never hurts** (after the seed): letting the solve
//!    run longer before firing yields a synchronized objective that is
//!    monotone non-increasing, because every completed alternation round
//!    accepts a candidate only when it lowers the coupled cost.
//!
//! Wall-clock deadlines interrupt the solver after some prefix of its
//! deterministic poll sequence; `CancelToken::cancel_after(n)` pins that
//! prefix length exactly, so these tests replay kill points
//! deterministically instead of racing a timer.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use comparesets_core::{
    comparesets_plus_objective, solve_comparesets_plus_checked, solve_comparesets_plus_with,
    solve_crs_checked, solve_crs_with, CancelToken, CoreError, InstanceContext, OpinionScheme,
    SelectParams, Selection, SolveOptions, SolverMetrics,
};
use comparesets_data::CategoryPreset;

fn context() -> InstanceContext {
    let d = CategoryPreset::Cellphone.config(60, 11).generate();
    let inst = d.instances().into_iter().next().unwrap().truncated(5);
    InstanceContext::build(&d, &inst, OpinionScheme::Binary)
}

fn params() -> SelectParams {
    SelectParams::default()
}

/// Total polls a never-firing run of `solve` consumes (the deterministic
/// length of its poll sequence).
fn count_checks(solve: impl FnOnce(&SolveOptions)) -> u64 {
    let metrics = Arc::new(SolverMetrics::new());
    let opts = SolveOptions::sequential()
        .with_metrics(Arc::clone(&metrics))
        .with_cancel(Arc::new(CancelToken::new()));
    solve(&opts);
    metrics.snapshot().cancellation_checks
}

fn plus_opts(kill_after: u64) -> SolveOptions {
    SolveOptions::sequential().with_cancel(Arc::new(CancelToken::cancel_after(kill_after)))
}

/// Unwrap a checked-plus result into plain selections: `Ok` slots of a
/// completed batch, or `best_so_far` of an expired one.
fn selections_of(
    result: Result<Vec<Result<Selection, CoreError>>, CoreError>,
) -> (Vec<Selection>, bool) {
    match result {
        Ok(slots) => (
            slots.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            false,
        ),
        Err(CoreError::DeadlineExceeded { best_so_far }) => (best_so_far, true),
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn never_firing_token_is_bit_identical_everywhere() {
    let ctx = context();
    let p = params();
    let plain = solve_comparesets_plus_with(&ctx, &p, &SolveOptions::sequential());
    let plain_crs = solve_crs_with(&ctx, p.m, &SolveOptions::sequential());
    for opts in [
        SolveOptions::sequential(),
        SolveOptions::parallel(),
        SolveOptions::with_threads(2),
    ] {
        let opts = opts.with_cancel(Arc::new(CancelToken::new()));
        assert_eq!(plain, solve_comparesets_plus_with(&ctx, &p, &opts));
        assert_eq!(plain_crs, solve_crs_with(&ctx, p.m, &opts));
        // Checked path: completes as Ok, no deadline classification.
        let (sels, expired) = selections_of(solve_comparesets_plus_checked(&ctx, &p, 1, &opts));
        assert!(!expired);
        assert_eq!(plain, sels);
    }
}

#[test]
fn best_so_far_is_feasible_at_every_kill_point() {
    let ctx = context();
    let p = params();
    let total = count_checks(|opts| {
        let _ = solve_comparesets_plus_checked(&ctx, &p, 1, opts);
    });
    assert!(total > 10, "expected a non-trivial poll sequence");

    // Every kill point would be O(total) solves; stride the sweep but
    // always include the boundaries (kill at entry, kill on last poll).
    let stride = (total / 40).max(1);
    let mut kills: Vec<u64> = (0..total).step_by(stride as usize).collect();
    kills.push(total - 1);
    for k in kills {
        let (sels, expired) =
            selections_of(solve_comparesets_plus_checked(&ctx, &p, 1, &plus_opts(k)));
        assert!(expired, "token with budget {k} < {total} must classify");
        assert_eq!(sels.len(), ctx.num_items(), "kill at {k}");
        for (i, s) in sels.iter().enumerate() {
            assert!(!s.is_empty(), "kill at {k}: item {i} empty");
            assert!(s.len() <= p.m, "kill at {k}: item {i} over budget");
            assert!(
                s.indices.iter().all(|&r| r < ctx.item(i).num_reviews()),
                "kill at {k}: item {i} has out-of-range indices"
            );
        }
    }

    // A budget covering every poll never fires: the solve completes.
    let (sels, expired) = selections_of(solve_comparesets_plus_checked(
        &ctx,
        &p,
        1,
        &plus_opts(total),
    ));
    assert!(!expired);
    assert_eq!(
        sels,
        solve_comparesets_plus_with(&ctx, &p, &SolveOptions::sequential())
    );
}

#[test]
fn objective_is_monotone_non_increasing_in_the_deadline_after_the_seed() {
    let ctx = context();
    let p = params();
    // Poll count of the seed phase alone (the CompaReSetS solve that
    // Algorithm 1 starts from). Before this point the solver has not yet
    // produced its first coupled iterate, so monotonicity is only claimed
    // for kill points at or beyond the seed: from there on, every
    // completed alternation round accepts candidates only when they lower
    // the synchronized objective.
    let t_seed = count_checks(|opts| {
        let _ = comparesets_core::solve_comparesets_checked(&ctx, &p, opts);
    });
    let total = count_checks(|opts| {
        let _ = solve_comparesets_plus_checked(&ctx, &p, 1, opts);
    });
    assert!(total > t_seed, "alternation phase must poll");

    let stride = ((total - t_seed) / 40).max(1);
    let mut prev: Option<(u64, f64)> = None;
    let mut kills: Vec<u64> = (t_seed..total).step_by(stride as usize).collect();
    kills.push(total);
    for k in kills {
        let (sels, _) = selections_of(solve_comparesets_plus_checked(&ctx, &p, 1, &plus_opts(k)));
        let obj = comparesets_plus_objective(&ctx, &sels, p.lambda, p.mu);
        if let Some((pk, pobj)) = prev {
            assert!(
                obj <= pobj + 1e-9,
                "objective rose from {pobj} (kill {pk}) to {obj} (kill {k})"
            );
        }
        prev = Some((k, obj));
    }
}

#[test]
fn expiry_is_classified_and_counted() {
    let ctx = context();
    let p = params();
    let metrics = Arc::new(SolverMetrics::new());
    let opts = SolveOptions::sequential()
        .with_metrics(Arc::clone(&metrics))
        .with_cancel(Arc::new(CancelToken::cancel_after(0)));
    let r = solve_comparesets_plus_checked(&ctx, &p, 1, &opts);
    assert!(matches!(r, Err(CoreError::DeadlineExceeded { .. })));
    let snap = metrics.snapshot();
    assert_eq!(snap.deadline_expirations, 1);
    assert!(snap.cancellation_checks > 0);

    // CRS classifies the same way.
    let opts = SolveOptions::sequential().with_cancel(Arc::new(CancelToken::cancel_after(0)));
    match solve_crs_checked(&ctx, p.m, &opts) {
        Err(CoreError::DeadlineExceeded { best_so_far }) => {
            assert_eq!(best_so_far.len(), ctx.num_items());
            assert!(best_so_far.iter().all(|s| !s.is_empty()));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // An explicit wall-clock deadline in the past behaves identically.
    let opts = SolveOptions::sequential().with_timeout(std::time::Duration::ZERO);
    assert!(matches!(
        solve_comparesets_plus_checked(&ctx, &p, 1, &opts),
        Err(CoreError::DeadlineExceeded { .. })
    ));
}

#[test]
fn incremental_session_with_fired_token_keeps_valid_selections() {
    use comparesets_core::IncrementalSession;
    use comparesets_data::ReviewId;

    let ctx = context();
    let token = Arc::new(CancelToken::new());
    let opts = SolveOptions::sequential().with_cancel(Arc::clone(&token));
    let mut session = IncrementalSession::with_options(ctx, params(), opts);
    let before = session.selections().to_vec();
    token.cancel();
    // Updates under a fired token keep the previous (still valid)
    // selections instead of degrading them.
    session.add_review(
        1,
        ReviewId(900_500),
        comparesets_core::ReviewFeature::new(vec![(0, comparesets_data::Polarity::Positive)]),
    );
    assert_eq!(session.selections(), &before[..]);
    let obj_before = session.objective();
    session.refresh();
    assert!(session.objective() <= obj_before + 1e-9);
}
