//! Streaming-session tests: edit/delete event application and the
//! crash-recovery identity — a session rebuilt by
//! [`IncrementalSession::replay`] from a snapshot context + event tail
//! is byte-identical to a session started cold on the final corpus.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_core::{
    IncrementalSession, InstanceContext, OpinionScheme, ReviewFeature, SelectParams, SessionEvent,
    SolveOptions,
};
use comparesets_data::wal::{EventKind, ReviewEvent};
use comparesets_data::{
    AspectId, AspectMention, CategoryPreset, ComparisonInstance, Dataset, Polarity, ReviewId,
};
use proptest::prelude::*;

fn corpus(seed: u64) -> (Dataset, ComparisonInstance) {
    let d = CategoryPreset::Toy.config(30, seed).generate();
    let inst = d.instances().into_iter().next().unwrap().truncated(2);
    (d, inst)
}

fn feature_of(mentions: &[AspectMention]) -> ReviewFeature {
    ReviewFeature::new(
        mentions
            .iter()
            .map(|m| (m.aspect.0 as usize, m.polarity))
            .collect(),
    )
}

/// Drive `raw` op tuples through the *data-layer* event path (exactly
/// what WAL replay applies to a recovered dataset), mirroring each
/// applied event as the *core-layer* [`SessionEvent`]. Infeasible ops
/// (deleting a last review) are skipped, as the serve path's
/// validate-before-append guarantees.
fn mirror_events(
    d: &mut Dataset,
    inst: &ComparisonInstance,
    raw: &[(u8, u8, u8, u8)],
) -> Vec<SessionEvent> {
    let mut session_events = Vec::new();
    let mut seq = 0u64;
    for &(op, item_r, which_r, aspect_r) in raw {
        let item = (item_r as usize) % inst.items.len();
        let product = inst.items[item];
        let listed = d.reviews_of(product).to_vec();
        let mentions = vec![AspectMention {
            aspect: AspectId(u32::from(aspect_r) % d.num_aspects() as u32),
            polarity: if which_r % 2 == 0 {
                Polarity::Positive
            } else {
                Polarity::Negative
            },
        }];
        seq += 1;
        let ev = match op % 3 {
            0 => ReviewEvent {
                seq,
                kind: EventKind::Add,
                product,
                review: ReviewId(d.reviews.len() as u32),
                reviewer: d.num_reviewers,
                rating: 4,
                text: format!("streamed {seq}"),
                mentions,
            },
            1 => ReviewEvent {
                seq,
                kind: EventKind::Edit,
                product,
                review: listed[which_r as usize % listed.len()],
                reviewer: 0,
                rating: 3,
                text: format!("revised {seq}"),
                mentions,
            },
            _ => {
                if listed.len() <= 1 {
                    continue; // the serve path rejects deleting a last review mid-instance
                }
                ReviewEvent {
                    seq,
                    kind: EventKind::Delete,
                    product,
                    review: listed[which_r as usize % listed.len()],
                    reviewer: 0,
                    rating: 0,
                    text: String::new(),
                    mentions: Vec::new(),
                }
            }
        };
        d.apply_event(&ev).unwrap();
        session_events.push(match ev.kind {
            EventKind::Add => SessionEvent::Add {
                item,
                id: ev.review,
                feature: feature_of(&ev.mentions),
            },
            EventKind::Edit => SessionEvent::Edit {
                item,
                id: ev.review,
                feature: feature_of(&ev.mentions),
            },
            EventKind::Delete => SessionEvent::Delete {
                item,
                id: ev.review,
            },
        });
    }
    session_events
}

/// Assert two contexts are bit-identical in everything the solver reads.
fn assert_contexts_identical(a: &InstanceContext, b: &InstanceContext) {
    assert_eq!(a.num_items(), b.num_items());
    for i in 0..a.num_items() {
        assert_eq!(a.item(i).product, b.item(i).product);
        assert_eq!(a.item(i).review_ids, b.item(i).review_ids);
        assert_eq!(a.item(i).features, b.item(i).features);
        let (ta, tb) = (a.tau(i), b.tau(i));
        assert_eq!(ta.len(), tb.len());
        assert!(ta.iter().zip(tb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
    assert!(a
        .gamma()
        .iter()
        .zip(b.gamma())
        .all(|(x, y)| x.to_bits() == y.to_bits()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole identity: replaying a WAL tail over the snapshot
    /// context, then solving once, equals a cold solve over the final
    /// corpus — selections equal, objective bit-identical.
    #[test]
    fn replay_is_byte_identical_to_cold_solve_over_final_corpus(
        seed in 0u64..50,
        raw in proptest::collection::vec((0u8..255, 0u8..255, 0u8..255, 0u8..255), 1..10),
    ) {
        let (d0, inst) = corpus(seed);
        let mut d = d0.clone();
        let events = mirror_events(&mut d, &inst, &raw);
        prop_assert!(d.validate().is_empty());

        // Recovery path: snapshot context + event tail.
        let snapshot_ctx = InstanceContext::build(&d0, &inst, OpinionScheme::Binary);
        let replayed = IncrementalSession::replay(
            snapshot_ctx,
            SelectParams::default(),
            SolveOptions::sequential(),
            &events,
        );
        // Never-crashed path: cold solve over the final corpus.
        let cold_ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
        assert_contexts_identical(replayed.context(), &cold_ctx);
        let cold = IncrementalSession::with_options(
            cold_ctx,
            SelectParams::default(),
            SolveOptions::sequential(),
        );
        prop_assert_eq!(replayed.selections(), cold.selections());
        prop_assert_eq!(
            replayed.objective().to_bits(),
            cold.objective().to_bits(),
            "objectives must match bit-for-bit"
        );
    }

    /// Live edit/delete application keeps every selection a valid subset
    /// of its (mutated) candidate set, whatever order events arrive in.
    #[test]
    fn live_event_application_keeps_selections_valid(
        seed in 0u64..50,
        raw in proptest::collection::vec((0u8..255, 0u8..255, 0u8..255, 0u8..255), 1..8),
    ) {
        let (d0, inst) = corpus(seed);
        let mut d = d0.clone();
        let events = mirror_events(&mut d, &inst, &raw);
        let ctx = InstanceContext::build(&d0, &inst, OpinionScheme::Binary);
        let mut session = IncrementalSession::with_options(
            ctx,
            SelectParams::default(),
            SolveOptions::sequential(),
        );
        for ev in &events {
            session.apply_event(ev);
            for (i, sel) in session.selections().iter().enumerate() {
                let n = session.context().item(i).num_reviews();
                prop_assert!(!sel.is_empty());
                prop_assert!(sel.indices.iter().all(|&r| r < n));
                prop_assert!(sel.indices.windows(2).all(|w| w[0] < w[1]),
                    "indices stay sorted and unique");
            }
        }
        prop_assert!(session.objective().is_finite());
        prop_assert_eq!(session.updates_since_refresh(), events.len());
    }
}

#[test]
fn deleting_a_selected_review_remaps_the_selection() {
    let (d, inst) = corpus(7);
    let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
    let mut session =
        IncrementalSession::with_options(ctx, SelectParams::default(), SolveOptions::sequential());
    // Delete exactly the first selected review of item 1.
    let victim_pos = session.selections()[1].indices[0];
    let victim_id = session.context().item(1).review_ids[victim_pos];
    let before = session.context().item(1).num_reviews();
    session.delete_review(1, victim_id);
    assert_eq!(session.context().item(1).num_reviews(), before - 1);
    assert!(session.context().position_of(1, victim_id).is_none());
    let n = session.context().item(1).num_reviews();
    assert!(!session.selections()[1].is_empty());
    assert!(session.selections()[1].indices.iter().all(|&r| r < n));
}

#[test]
fn editing_a_target_review_moves_gamma() {
    let (d, inst) = corpus(11);
    let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
    let mut session =
        IncrementalSession::with_options(ctx, SelectParams::default(), SolveOptions::sequential());
    let z = session.context().space().num_aspects();
    let absent = (0..z)
        .find(|&a| session.context().gamma()[a] == 0.0)
        .expect("some absent aspect");
    // Rewrite every target review to mention only the absent aspect.
    let ids = session.context().item(0).review_ids.clone();
    for id in ids {
        session.edit_review(
            0,
            id,
            ReviewFeature::new(vec![(absent, Polarity::Positive)]),
        );
    }
    assert!(
        session.context().gamma()[absent] > 0.0,
        "gamma must track edited annotations"
    );
}

#[test]
#[should_panic(expected = "not part of item")]
fn editing_an_unknown_review_panics() {
    let (d, inst) = corpus(3);
    let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
    let mut session =
        IncrementalSession::with_options(ctx, SelectParams::default(), SolveOptions::sequential());
    session.edit_review(0, ReviewId(999_999), ReviewFeature::new(vec![]));
}

#[test]
#[should_panic(expected = "last review")]
fn deleting_down_to_zero_panics() {
    let (d, inst) = corpus(5);
    let ctx = InstanceContext::build(&d, &inst, OpinionScheme::Binary);
    let mut session =
        IncrementalSession::with_options(ctx, SelectParams::default(), SolveOptions::sequential());
    let ids = session.context().item(1).review_ids.clone();
    for id in ids {
        session.delete_review(1, id);
    }
}
