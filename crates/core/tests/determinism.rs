//! Parallel execution must be a pure wall-clock decision: for every
//! solver and every [`SolveOptions`] value, the selections and objectives
//! are bit-identical to the sequential run. These tests pin that
//! guarantee on generated instances of all three categories.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_core::{
    comparesets_objective, comparesets_plus_objective, solve_checked, solve_comparesets_plus_with,
    solve_comparesets_with, solve_crs_with, solve_with, Algorithm, InstanceContext, OpinionScheme,
    SelectParams, Selection, SolveOptions,
};
use comparesets_data::CategoryPreset;

fn contexts() -> Vec<InstanceContext> {
    [
        (CategoryPreset::Cellphone, 11u64),
        (CategoryPreset::Toy, 22),
        (CategoryPreset::Clothing, 33),
    ]
    .into_iter()
    .flat_map(|(preset, seed)| {
        let d = preset.config(60, seed).generate();
        d.instances()
            .into_iter()
            .take(2)
            .map(|inst| InstanceContext::build(&d, &inst.truncated(5), OpinionScheme::Binary))
            .collect::<Vec<_>>()
    })
    .collect()
}

fn option_grid() -> [SolveOptions; 3] {
    [
        SolveOptions::parallel(),
        SolveOptions::with_threads(2),
        SolveOptions::with_threads(4),
    ]
}

/// Selections compare exactly: same review indices per item.
fn assert_identical(seq: &[Selection], par: &[Selection], what: &str) {
    assert_eq!(seq.len(), par.len(), "{what}: item count");
    for (i, (s, p)) in seq.iter().zip(par.iter()).enumerate() {
        assert_eq!(s.indices, p.indices, "{what}: item {i} indices");
    }
}

#[test]
fn crs_parallel_matches_sequential() {
    let seq_opts = SolveOptions::sequential();
    for (c, ctx) in contexts().iter().enumerate() {
        for m in [1, 3] {
            let seq = solve_crs_with(ctx, m, &seq_opts);
            for opts in option_grid() {
                let par = solve_crs_with(ctx, m, &opts);
                assert_identical(&seq, &par, &format!("crs ctx {c} m {m} {opts:?}"));
            }
        }
    }
}

#[test]
fn comparesets_parallel_matches_sequential() {
    let params = SelectParams::default();
    let seq_opts = SolveOptions::sequential();
    for (c, ctx) in contexts().iter().enumerate() {
        let seq = solve_comparesets_with(ctx, &params, &seq_opts);
        let seq_obj = comparesets_objective(ctx, &seq, params.lambda);
        for opts in option_grid() {
            let par = solve_comparesets_with(ctx, &params, &opts);
            assert_identical(&seq, &par, &format!("comparesets ctx {c} {opts:?}"));
            let par_obj = comparesets_objective(ctx, &par, params.lambda);
            assert_eq!(seq_obj.to_bits(), par_obj.to_bits());
        }
    }
}

#[test]
fn comparesets_plus_parallel_matches_sequential() {
    let params = SelectParams::default();
    let seq_opts = SolveOptions::sequential();
    for (c, ctx) in contexts().iter().enumerate() {
        let seq = solve_comparesets_plus_with(ctx, &params, &seq_opts);
        let seq_obj = comparesets_plus_objective(ctx, &seq, params.lambda, params.mu);
        for opts in option_grid() {
            let par = solve_comparesets_plus_with(ctx, &params, &opts);
            assert_identical(&seq, &par, &format!("comparesets+ ctx {c} {opts:?}"));
            let par_obj = comparesets_plus_objective(ctx, &par, params.lambda, params.mu);
            assert_eq!(seq_obj.to_bits(), par_obj.to_bits());
        }
    }
}

#[test]
fn solve_with_honours_options_for_every_algorithm() {
    let params = SelectParams::default();
    let ctx = &contexts()[0];
    for alg in Algorithm::ALL {
        let seq = solve_with(ctx, alg, &params, 7, &SolveOptions::sequential());
        for opts in option_grid() {
            let par = solve_with(ctx, alg, &params, 7, &opts);
            assert_identical(&seq, &par, &format!("{alg:?} {opts:?}"));
        }
    }
}

/// The fault-tolerant (`_checked`) solve path must not perturb well-posed
/// solves: for every algorithm, every slot is `Ok` and the selections are
/// bit-identical to the legacy entry point, sequentially and in parallel.
#[test]
fn checked_path_is_bit_identical_to_legacy_on_well_posed_inputs() {
    let params = SelectParams::default();
    for (c, ctx) in contexts().iter().enumerate() {
        for alg in Algorithm::ALL {
            let legacy = solve_with(ctx, alg, &params, 7, &SolveOptions::sequential());
            let checked: Vec<Selection> =
                solve_checked(ctx, alg, &params, 7, &SolveOptions::sequential())
                    .expect("valid params")
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| r.unwrap_or_else(|e| panic!("ctx {c} {alg:?} item {i}: {e}")))
                    .collect();
            assert_identical(&legacy, &checked, &format!("checked ctx {c} {alg:?}"));
            for opts in option_grid() {
                let par: Vec<Selection> = solve_checked(ctx, alg, &params, 7, &opts)
                    .expect("valid params")
                    .into_iter()
                    .map(|r| r.expect("well-posed item"))
                    .collect();
                assert_identical(
                    &legacy,
                    &par,
                    &format!("checked-par ctx {c} {alg:?} {opts:?}"),
                );
            }
        }
    }
}
