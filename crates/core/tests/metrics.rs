//! Metrics-correctness tests at the solver level: attaching a collector
//! never changes a selection, the counters obey the structural identities
//! of the solve path, and parallel execution reports the same aggregate
//! totals as sequential execution (the per-item work is identical; only
//! the interleaving differs).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use comparesets_core::{
    solve_with, Algorithm, InstanceContext, OpinionScheme, SelectParams, SolveOptions,
    SolverMetrics,
};
use comparesets_data::CategoryPreset;

fn contexts() -> Vec<InstanceContext> {
    let dataset = CategoryPreset::Cellphone.config(120, 11).generate();
    dataset
        .instances()
        .into_iter()
        .take(4)
        .map(|inst| InstanceContext::build(&dataset, &inst.truncated(5), OpinionScheme::Binary))
        .collect()
}

fn run_all(
    ctxs: &[InstanceContext],
    algorithm: Algorithm,
    opts: &SolveOptions,
) -> Vec<Vec<comparesets_core::Selection>> {
    let params = SelectParams::default();
    ctxs.iter()
        .map(|ctx| solve_with(ctx, algorithm, &params, 42, opts))
        .collect()
}

#[test]
fn attaching_a_collector_does_not_change_selections() {
    let ctxs = contexts();
    for algorithm in [
        Algorithm::Crs,
        Algorithm::CompareSets,
        Algorithm::CompareSetsPlus,
    ] {
        let plain = run_all(&ctxs, algorithm, &SolveOptions::default());
        let metrics = Arc::new(SolverMetrics::new());
        let metered_opts = SolveOptions::default().with_metrics(Arc::clone(&metrics));
        let metered = run_all(&ctxs, algorithm, &metered_opts);
        assert_eq!(plain, metered, "{algorithm:?} selections drifted");
        assert!(
            metrics.snapshot().nomp_pursuits > 0,
            "{algorithm:?} did not report any pursuit"
        );
    }
}

#[test]
fn counters_obey_solve_path_identities() {
    let ctxs = contexts();
    let metrics = Arc::new(SolverMetrics::new());
    let opts = SolveOptions::default().with_metrics(Arc::clone(&metrics));
    run_all(&ctxs, Algorithm::CompareSetsPlus, &opts);
    let snap = metrics.snapshot();

    // Every integer regression runs exactly one budget-path pursuit (a
    // warm full-target reuse still counts as a pursuit).
    assert_eq!(snap.nomp_pursuits, snap.integer_regressions);
    // One NNLS refit per accepted atom, except atoms replayed from a
    // validated warm trajectory, whose cached refit is reused.
    assert_eq!(
        snap.nnls_refits,
        snap.nomp_iterations - snap.warm_start_hits
    );
    // The Gram cache serves every executed refit whose support was
    // already non-empty; the first refit of each pursuit never hits it.
    assert!(snap.gram_cache_hits <= snap.nnls_refits);
    assert!(snap.gram_cache_hits + snap.nomp_pursuits >= snap.nnls_refits);
    // Path mode snapshots one result per budget ℓ = 1..=l_max per
    // pursuit, where l_max ≤ m (items with fewer reviews cap it lower).
    assert!(snap.path_snapshots >= snap.nomp_pursuits);
    assert!(snap.path_snapshots <= snap.nomp_pursuits * 3);
    // CompaReSetS+ alternation: accepts are a subset of rounds, and every
    // alternation round solved one regression beyond the warm start.
    assert!(snap.alternation_rounds > 0);
    assert!(snap.alternation_accepts <= snap.alternation_rounds);
    assert!(snap.integer_regressions >= snap.alternation_rounds);
    // The refit clock is contained in the pursuit clock.
    assert!(snap.pursuit_nanos >= snap.refit_nanos);
}

#[test]
fn parallel_and_sequential_runs_report_identical_aggregates() {
    let ctxs = contexts();
    for algorithm in [
        Algorithm::Crs,
        Algorithm::CompareSets,
        Algorithm::CompareSetsPlus,
    ] {
        let seq_metrics = Arc::new(SolverMetrics::new());
        let seq_opts = SolveOptions::sequential().with_metrics(Arc::clone(&seq_metrics));
        let seq = run_all(&ctxs, algorithm, &seq_opts);

        let par_metrics = Arc::new(SolverMetrics::new());
        let par_opts = SolveOptions::with_threads(2).with_metrics(Arc::clone(&par_metrics));
        let par = run_all(&ctxs, algorithm, &par_opts);

        assert_eq!(seq, par, "{algorithm:?} parallel selections drifted");
        let mut seq_snap = seq_metrics.snapshot();
        let mut par_snap = par_metrics.snapshot();
        // Wall-time counters legitimately differ between modes; every
        // structural counter must not.
        seq_snap.pursuit_nanos = 0;
        seq_snap.refit_nanos = 0;
        par_snap.pursuit_nanos = 0;
        par_snap.refit_nanos = 0;
        assert_eq!(
            seq_snap, par_snap,
            "{algorithm:?} parallel aggregates drifted"
        );
    }
}

#[test]
fn random_and_greedy_baselines_report_no_solver_work() {
    let ctxs = contexts();
    let metrics = Arc::new(SolverMetrics::new());
    let opts = SolveOptions::default().with_metrics(Arc::clone(&metrics));
    run_all(&ctxs, Algorithm::Random, &opts);
    run_all(&ctxs, Algorithm::CompareSetsGreedy, &opts);
    assert!(
        metrics.snapshot().is_empty(),
        "non-regression baselines must not touch the solver counters"
    );
}
