//! Property-based tests for the synthetic generator and serialisation.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_data::io::{from_json, to_json};
use comparesets_data::{CategoryPreset, SynthConfig};
use proptest::prelude::*;

fn preset() -> impl Strategy<Value = CategoryPreset> {
    prop_oneof![
        Just(CategoryPreset::Cellphone),
        Just(CategoryPreset::Toy),
        Just(CategoryPreset::Clothing),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_corpora_are_always_consistent(
        p in preset(),
        products in 5usize..60,
        seed in 0u64..1000,
    ) {
        let d = p.config(products, seed).generate();
        prop_assert!(d.validate().is_empty(), "{:?}", d.validate());
        prop_assert_eq!(d.products.len(), products);
        // Every instance's items have at least one review and include the
        // target.
        for inst in d.instances() {
            prop_assert!(inst.len() >= 2);
            for &pid in &inst.items {
                prop_assert!(!d.reviews_of(pid).is_empty());
            }
        }
    }

    #[test]
    fn serialisation_round_trip_is_lossless(
        p in preset(),
        seed in 0u64..200,
    ) {
        let d = p.config(15, seed).generate();
        let json = to_json(&d).unwrap();
        let back = from_json(&json).unwrap();
        prop_assert_eq!(to_json(&back).unwrap(), json);
    }

    #[test]
    fn custom_config_knobs_are_respected(
        seed in 0u64..100,
        max_reviews in 2usize..8,
    ) {
        let mut cfg: SynthConfig = CategoryPreset::Toy.config(20, seed);
        cfg.max_reviews_per_product = max_reviews;
        cfg.mentions_per_review = (1, 2);
        let d = cfg.generate();
        for p in &d.products {
            prop_assert!(p.reviews.len() <= max_reviews);
        }
        for r in &d.reviews {
            prop_assert!((1..=2).contains(&r.mentions.len()));
        }
    }
}
