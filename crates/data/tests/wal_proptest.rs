//! Property-based tests for WAL torn-tail recovery (ARCHITECTURE.md §11).
//!
//! The durability invariant under test: truncating or corrupting the WAL
//! at *any* byte recovers exactly the longest prefix of whole, valid
//! records — recovery never fails, never invents events, and the store
//! keeps accepting appends afterwards.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use comparesets_data::wal::{scan_wal, WAL_FILE};
use comparesets_data::{
    AspectId, AspectMention, CategoryPreset, CorpusStore, Dataset, EventKind, Polarity, ProductId,
    ReviewEvent, ReviewId,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "comparesets_walprop_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn add_event(d: &Dataset, seq: u64, product: u32) -> ReviewEvent {
    ReviewEvent {
        seq,
        kind: EventKind::Add,
        product: ProductId(product),
        review: ReviewId(d.reviews.len() as u32),
        reviewer: d.num_reviewers,
        rating: 1 + (seq % 5) as u8,
        text: format!("streamed {seq}"),
        mentions: vec![AspectMention {
            aspect: AspectId((seq % 3) as u32),
            polarity: if seq.is_multiple_of(2) {
                Polarity::Positive
            } else {
                Polarity::Negative
            },
        }],
    }
}

/// Build a store with `n` appended events; returns (dir, per-record end
/// offsets, live dataset states after each event).
fn populated_store(tag: &str, n: u64) -> (PathBuf, Vec<u64>, Vec<Dataset>) {
    let dir = temp_dir(tag);
    let seed = CategoryPreset::Toy.config(8, 3).generate();
    let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
    let mut live = rec.dataset;
    let mut offsets = vec![0u64];
    let mut states = vec![live.clone()];
    for k in 0..n {
        let ev = add_event(&live, store.next_seq(), (k % 5) as u32);
        store.append(std::slice::from_ref(&ev)).unwrap();
        live.apply_event(&ev).unwrap();
        offsets.push(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        states.push(live.clone());
    }
    (dir, offsets, states)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn truncation_at_any_byte_recovers_the_acknowledged_prefix(
        n in 1u64..10,
        cut_frac in 0.0f64..1.0,
    ) {
        let (dir, offsets, states) = populated_store("cut", n);
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::metadata(&wal_path).unwrap().len();
        let cut = (full as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Recovery keeps exactly the records that fit whole below the cut.
        let survivors = offsets.iter().filter(|&&end| end > 0 && end <= cut).count();
        let scan = scan_wal(&wal_path).unwrap();
        prop_assert_eq!(scan.events.len(), survivors);
        prop_assert_eq!(scan.valid_len, offsets[survivors]);

        let (mut store, rec) = CorpusStore::open(&dir, None, 0, None).unwrap();
        prop_assert_eq!(rec.replayed, survivors as u64);
        prop_assert_eq!(
            serde_json::to_string(&rec.dataset).unwrap(),
            serde_json::to_string(&states[survivors]).unwrap(),
            "recovered corpus must equal the state after the last whole record"
        );

        // The store keeps working: append lands on the truncated boundary.
        let mut live = rec.dataset;
        let ev = add_event(&live, store.next_seq(), 0);
        store.append(std::slice::from_ref(&ev)).unwrap();
        live.apply_event(&ev).unwrap();
        drop(store);
        let rec2 = CorpusStore::open(&dir, None, 0, None).unwrap().1;
        prop_assert_eq!(
            serde_json::to_string(&rec2.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_at_any_byte_never_fails_recovery(
        n in 1u64..8,
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let (dir, offsets, states) = populated_store("flip", n);
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= flip;
        std::fs::write(&wal_path, &bytes).unwrap();

        // The flipped byte lives in some record k (0-based): the CRC (or
        // framing) check rejects exactly that record, recovery keeps the
        // k records before it, and never errors.
        let hit = offsets[1..].iter().position(|&end| (idx as u64) < end).unwrap();
        let rec = CorpusStore::open(&dir, None, 0, None).unwrap().1;
        prop_assert_eq!(rec.replayed, hit as u64);
        prop_assert_eq!(
            serde_json::to_string(&rec.dataset).unwrap(),
            serde_json::to_string(&states[rec.replayed as usize]).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
