//! JSON (de)serialisation of datasets.
//!
//! Corpora are written as pretty-printed JSON so experiment inputs can be
//! pinned, diffed, and shared — the reproducibility role the paper's
//! public dataset download plays.

use crate::fault::{disk_full_error, injected_error, FaultAction, FaultPlane, IoOp};
use crate::model::Dataset;
use crate::retry::{RetryPolicy, RetryReader};
use comparesets_obs::SolverMetrics;
use std::fs::{self, File};
use std::io::{BufReader, Write};
use std::path::Path;
use std::sync::Arc;

/// Is this error the fatal disk class — `ENOSPC` (no space) or `EROFS`
/// (read-only filesystem)? Neither resolves by retrying: backing off
/// against a full disk just delays the same failure, so every retry
/// path treats these as immediately fatal and the CLI maps them to
/// their own exit code (7) so operators can alert on it.
pub fn is_disk_fatal(e: &std::io::Error) -> bool {
    matches!(e.raw_os_error(), Some(28) | Some(30)) // ENOSPC, EROFS
}

/// Errors from dataset IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Fatal disk condition (`ENOSPC`/`EROFS`, see [`is_disk_fatal`]):
    /// never retried, surfaced as its own CLI exit code.
    Disk(std::io::Error),
    /// JSON (de)serialisation error.
    Json(serde_json::Error),
    /// The loaded dataset failed consistency validation.
    InvalidDataset(Vec<String>),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Disk(e) => write!(f, "disk fatal: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::InvalidDataset(problems) => {
                write!(
                    f,
                    "invalid dataset: {} problems, first: {}",
                    problems.len(),
                    problems.first().map(String::as_str).unwrap_or("")
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        if is_disk_fatal(&e) {
            IoError::Disk(e)
        } else {
            IoError::Io(e)
        }
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Serialise a dataset to a JSON string.
///
/// # Errors
/// Propagates serialisation failures.
pub fn to_json(dataset: &Dataset) -> Result<String, IoError> {
    Ok(serde_json::to_string(dataset)?)
}

/// Parse a dataset from JSON, validating consistency.
///
/// # Errors
/// [`IoError::Json`] on malformed JSON, [`IoError::InvalidDataset`] when
/// the parsed dataset fails [`Dataset::validate`].
pub fn from_json(json: &str) -> Result<Dataset, IoError> {
    let ds: Dataset = serde_json::from_str(json)?;
    let problems = ds.validate();
    if problems.is_empty() {
        Ok(ds)
    } else {
        Err(IoError::InvalidDataset(problems))
    }
}

/// Write `bytes` to `path` atomically: full contents to a temp file in
/// the destination directory, `fsync`, `rename` over the target, then a
/// directory `fsync` so the rename itself is durable. Readers never
/// observe a torn file; a crash mid-write leaves the previous contents
/// (or nothing) in place, and once this returns `Ok` the new contents
/// survive power loss — the durability contract the WAL snapshot and
/// suite checkpoint writers rely on.
///
/// # Errors
/// Propagates filesystem errors from creating, writing, syncing, or
/// renaming the temp file, and (on Unix) from syncing the parent
/// directory after the rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_with(path, bytes, None)
}

/// [`write_atomic`] with an optional [`FaultPlane`] consulted before the
/// temp-file write ([`IoOp::AtomicWrite`]) and before the publishing
/// rename ([`IoOp::Rename`]). With `plane` absent (every production
/// call) the behaviour and cost are identical to [`write_atomic`]; with
/// a plane, injected failures leave the destination untouched and the
/// temp file cleaned up — exactly the crash contract the real path
/// promises.
///
/// # Errors
/// As for [`write_atomic`], plus injected faults surfaced as I/O errors
/// (disk-full faults carry a real `ENOSPC` code).
pub fn write_atomic_with(
    path: &Path,
    bytes: &[u8],
    plane: Option<&FaultPlane>,
) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut keep = bytes.len();
        let mut verdict = Ok(());
        if let Some(p) = plane {
            match p.next(IoOp::AtomicWrite) {
                FaultAction::Pass | FaultAction::BitFlip(_) => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Fail => return Err(injected_error()),
                FaultAction::DiskFull => return Err(disk_full_error()),
                FaultAction::ShortWrite(per_mille) => {
                    // A torn temp-file write: some prefix lands, then the
                    // device gives out. The rename never runs, so the
                    // destination stays intact either way.
                    keep = bytes.len() * per_mille as usize / 1000;
                    verdict = Err(injected_error());
                }
            }
        }
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes[..keep])?;
        verdict?;
        f.sync_all()?;
        drop(f);
        if let Some(p) = plane {
            match p.next(IoOp::Rename) {
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Fail => return Err(injected_error()),
                FaultAction::DiskFull => return Err(disk_full_error()),
                _ => {}
            }
        }
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Leave no temp litter behind a failed write.
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Persist the rename itself: file fsync alone leaves the directory
    // entry unflushed, so a power cut could roll the rename back. On
    // Unix a directory opens like a file and fsyncs reliably; elsewhere
    // directory handles may not be openable, so stay best-effort.
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Save a dataset to a file atomically (see [`write_atomic`]): a crash
/// mid-save never corrupts a previously pinned corpus.
///
/// # Errors
/// Filesystem and serialisation errors.
pub fn save(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let json = serde_json::to_string(dataset)?;
    write_atomic(path, json.as_bytes())?;
    Ok(())
}

/// Load and validate a dataset from a file.
///
/// # Errors
/// Filesystem, parse, and validation errors.
pub fn load(path: &Path) -> Result<Dataset, IoError> {
    let r = BufReader::new(File::open(path)?);
    let ds: Dataset = serde_json::from_reader(r)?;
    let problems = ds.validate();
    if problems.is_empty() {
        Ok(ds)
    } else {
        Err(IoError::InvalidDataset(problems))
    }
}

/// [`load`] through a [`RetryReader`]: transient read failures
/// (`Interrupted`, `WouldBlock`, `TimedOut`) are absorbed per `policy`,
/// with retries counted into `metrics` when a collector is supplied
/// ([`SolverMetrics::io_retries`]).
///
/// # Errors
/// As for [`load`]; a transient error surfaces only once the retry
/// budget is exhausted.
pub fn load_retrying(
    path: &Path,
    policy: &RetryPolicy,
    metrics: Option<Arc<SolverMetrics>>,
) -> Result<Dataset, IoError> {
    let mut reader = RetryReader::new(File::open(path)?, policy.clone());
    if let Some(m) = metrics {
        reader = reader.with_metrics(m);
    }
    let r = BufReader::new(reader);
    let ds: Dataset = serde_json::from_reader(r)?;
    let problems = ds.validate();
    if problems.is_empty() {
        Ok(ds)
    } else {
        Err(IoError::InvalidDataset(problems))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::synth::CategoryPreset;

    #[test]
    fn json_round_trip_preserves_dataset() {
        let d = CategoryPreset::Toy.config(20, 11).generate();
        let json = to_json(&d).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(d.name, back.name);
        assert_eq!(d.aspects, back.aspects);
        assert_eq!(d.reviews.len(), back.reviews.len());
        assert_eq!(d.reviews[3].text, back.reviews[3].text);
        assert_eq!(d.products[7].also_bought, back.products[7].also_bought);
    }

    #[test]
    fn file_round_trip() {
        let d = CategoryPreset::Clothing.config(10, 5).generate();
        let dir = std::env::temp_dir().join("comparesets_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.reviews.len(), d.reviews.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retrying_load_round_trips_and_counts_nothing_on_a_healthy_file() {
        let d = CategoryPreset::Toy.config(10, 9).generate();
        let dir = std::env::temp_dir().join("comparesets_io_retry_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save(&d, &path).unwrap();
        let metrics = Arc::new(SolverMetrics::new());
        let back = load_retrying(
            &path,
            &RetryPolicy::immediate(3),
            Some(Arc::clone(&metrics)),
        )
        .unwrap();
        assert_eq!(back.reviews.len(), d.reviews.len());
        assert_eq!(metrics.snapshot().io_retries, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_leaves_no_temp_files() {
        let d = CategoryPreset::Toy.config(5, 3).generate();
        let dir = std::env::temp_dir().join("comparesets_io_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save(&d, &path).unwrap();
        save(&d, &path).unwrap(); // overwrite path also atomic
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_survives_overwrite_and_reports_missing_parent() {
        let dir = std::env::temp_dir().join("comparesets_io_durable_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // Overwrite goes through the same temp+fsync+rename+dir-fsync
        // path and must leave exactly the new contents.
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // A destination whose parent does not exist fails cleanly
        // (before any rename) instead of fsync-ing a phantom directory.
        let bad = dir.join("missing").join("blob.json");
        assert!(write_atomic(&bad, b"x").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_atomic_write_never_tears_the_destination() {
        let dir = std::env::temp_dir().join("comparesets_io_fault_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.json");
        write_atomic(&path, b"baseline").unwrap();
        let plane = FaultPlane::from_seed(0xBAD_5EED);
        let mut failures = 0;
        for k in 0..200u32 {
            let payload = format!("generation {k}");
            match write_atomic_with(&path, payload.as_bytes(), Some(&plane)) {
                Ok(()) => assert_eq!(std::fs::read(&path).unwrap(), payload.as_bytes()),
                Err(_) => {
                    failures += 1;
                    // The destination is whole: either the previous
                    // generation or some earlier complete write.
                    let now = std::fs::read_to_string(&path).unwrap();
                    assert!(
                        now == "baseline" || now.starts_with("generation "),
                        "torn destination: {now:?}"
                    );
                    assert!(!now.contains('\0'));
                }
            }
        }
        assert!(failures > 0, "plane never fired");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp litter: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_fatal_errors_classify_into_their_own_variant() {
        let e: IoError = crate::fault::disk_full_error().into();
        assert!(matches!(e, IoError::Disk(_)), "{e:?}");
        assert!(e.to_string().contains("disk fatal"), "{e}");
        let e: IoError = std::io::Error::other("plain").into();
        assert!(matches!(e, IoError::Io(_)), "{e:?}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(from_json("{not json"), Err(IoError::Json(_))));
    }

    #[test]
    fn inconsistent_dataset_is_rejected() {
        let mut d = CategoryPreset::Toy.config(5, 2).generate();
        // Corrupt: dangling review reference.
        d.products[0].reviews.push(crate::model::ReviewId(9999));
        let json = serde_json::to_string(&d).unwrap();
        assert!(matches!(from_json(&json), Err(IoError::InvalidDataset(_))));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            load(Path::new("/nonexistent/definitely/not/here.json")),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = IoError::InvalidDataset(vec!["boom".into()]);
        assert!(e.to_string().contains("boom"));
    }
}
