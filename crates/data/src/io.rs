//! JSON (de)serialisation of datasets.
//!
//! Corpora are written as pretty-printed JSON so experiment inputs can be
//! pinned, diffed, and shared — the reproducibility role the paper's
//! public dataset download plays.

use crate::model::Dataset;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from dataset IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialisation error.
    Json(serde_json::Error),
    /// The loaded dataset failed consistency validation.
    InvalidDataset(Vec<String>),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::InvalidDataset(problems) => {
                write!(
                    f,
                    "invalid dataset: {} problems, first: {}",
                    problems.len(),
                    problems.first().map(String::as_str).unwrap_or("")
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Serialise a dataset to a JSON string.
///
/// # Errors
/// Propagates serialisation failures.
pub fn to_json(dataset: &Dataset) -> Result<String, IoError> {
    Ok(serde_json::to_string(dataset)?)
}

/// Parse a dataset from JSON, validating consistency.
///
/// # Errors
/// [`IoError::Json`] on malformed JSON, [`IoError::InvalidDataset`] when
/// the parsed dataset fails [`Dataset::validate`].
pub fn from_json(json: &str) -> Result<Dataset, IoError> {
    let ds: Dataset = serde_json::from_str(json)?;
    let problems = ds.validate();
    if problems.is_empty() {
        Ok(ds)
    } else {
        Err(IoError::InvalidDataset(problems))
    }
}

/// Save a dataset to a file.
///
/// # Errors
/// Filesystem and serialisation errors.
pub fn save(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    serde_json::to_writer(&mut w, dataset)?;
    w.flush()?;
    Ok(())
}

/// Load and validate a dataset from a file.
///
/// # Errors
/// Filesystem, parse, and validation errors.
pub fn load(path: &Path) -> Result<Dataset, IoError> {
    let r = BufReader::new(File::open(path)?);
    let ds: Dataset = serde_json::from_reader(r)?;
    let problems = ds.validate();
    if problems.is_empty() {
        Ok(ds)
    } else {
        Err(IoError::InvalidDataset(problems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CategoryPreset;

    #[test]
    fn json_round_trip_preserves_dataset() {
        let d = CategoryPreset::Toy.config(20, 11).generate();
        let json = to_json(&d).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(d.name, back.name);
        assert_eq!(d.aspects, back.aspects);
        assert_eq!(d.reviews.len(), back.reviews.len());
        assert_eq!(d.reviews[3].text, back.reviews[3].text);
        assert_eq!(d.products[7].also_bought, back.products[7].also_bought);
    }

    #[test]
    fn file_round_trip() {
        let d = CategoryPreset::Clothing.config(10, 5).generate();
        let dir = std::env::temp_dir().join("comparesets_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.reviews.len(), d.reviews.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(from_json("{not json"), Err(IoError::Json(_))));
    }

    #[test]
    fn inconsistent_dataset_is_rejected() {
        let mut d = CategoryPreset::Toy.config(5, 2).generate();
        // Corrupt: dangling review reference.
        d.products[0].reviews.push(crate::model::ReviewId(9999));
        let json = serde_json::to_string(&d).unwrap();
        assert!(matches!(from_json(&json), Err(IoError::InvalidDataset(_))));
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            load(Path::new("/nonexistent/definitely/not/here.json")),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = IoError::InvalidDataset(vec!["boom".into()]);
        assert!(e.to_string().contains("boom"));
    }
}
