//! Seeded synthetic corpus generator.
//!
//! Substitutes the Amazon Product Review Dataset (see DESIGN.md §1). The
//! generator reproduces the *structural* properties the selection
//! algorithms are sensitive to:
//!
//! * products cluster into families of similar items ("also bought" lists
//!   connect mostly within a family, like co-purchase neighbourhoods);
//! * each product has an aspect-popularity profile and a per-aspect
//!   quality, so reviews of one product share aspects and skew
//!   consistently positive/negative;
//! * review text is rendered from shared templates, so ROUGE between two
//!   reviews grows with genuine aspect overlap;
//! * per-category knobs mirror Table 2 (average reviews/product and
//!   average comparison-list length).
//!
//! Everything is driven by a [`ChaCha8Rng`] seed: the same config yields
//! byte-identical corpora on every platform.

use crate::model::{
    AspectId, AspectMention, Dataset, Polarity, Product, ProductId, Review, ReviewId,
};
use crate::templates;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset/category name.
    pub name: String,
    /// Aspect vocabulary for the category.
    pub aspects: Vec<String>,
    /// Number of products to generate.
    pub num_products: usize,
    /// Number of distinct reviewer identities.
    pub num_reviewers: usize,
    /// Number of product families (clusters).
    pub num_clusters: usize,
    /// How many of the category's aspects a cluster actively discusses.
    pub aspects_per_cluster: usize,
    /// Mean reviews per product (geometric-like distribution).
    pub avg_reviews_per_product: f64,
    /// Hard cap on reviews per product.
    pub max_reviews_per_product: usize,
    /// Probability a product ends up with zero reviews (such products are
    /// skipped as targets, as in Table 2 where #Target < #Product).
    pub reviewless_probability: f64,
    /// Mean length of the "also bought" comparison list.
    pub avg_comparisons: f64,
    /// Minimum and maximum aspect mentions per review.
    pub mentions_per_review: (usize, usize),
    /// Base probability that an opinion is positive (modulated per
    /// product/aspect quality).
    pub positive_ratio: f64,
    /// Fraction of mentions that are neutral.
    pub neutral_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The three category presets used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategoryPreset {
    /// Cell Phones and Accessories.
    Cellphone,
    /// Toys and Games.
    Toy,
    /// Clothing.
    Clothing,
}

impl CategoryPreset {
    /// All presets in paper order.
    pub const ALL: [CategoryPreset; 3] = [
        CategoryPreset::Cellphone,
        CategoryPreset::Toy,
        CategoryPreset::Clothing,
    ];

    /// Display name matching Table 2's column headers.
    pub fn name(self) -> &'static str {
        match self {
            CategoryPreset::Cellphone => "Cellphone",
            CategoryPreset::Toy => "Toy",
            CategoryPreset::Clothing => "Clothing",
        }
    }

    /// Aspect vocabulary for the category.
    pub fn aspects(self) -> Vec<String> {
        let terms: &[&str] = match self {
            CategoryPreset::Cellphone => &[
                "battery",
                "screen",
                "charger",
                "cable",
                "case",
                "camera",
                "speaker",
                "button",
                "signal",
                "storage",
                "price",
                "design",
                "grip",
                "port",
                "bluetooth",
                "durability",
                "weight",
                "display",
                "microphone",
                "adapter",
                "mount",
                "holder",
                "protector",
                "warranty",
                "packaging",
                "instructions",
                "fit",
                "texture",
                "brightness",
                "latency",
            ],
            CategoryPreset::Toy => &[
                "pieces",
                "colors",
                "instructions",
                "assembly",
                "box",
                "plastic",
                "paint",
                "batteries",
                "sound",
                "lights",
                "wheels",
                "figure",
                "puzzle",
                "cards",
                "board",
                "dice",
                "stickers",
                "magnets",
                "blocks",
                "durability",
                "size",
                "price",
                "theme",
                "artwork",
                "rules",
                "storage",
                "edges",
                "safety",
                "motor",
                "remote",
            ],
            CategoryPreset::Clothing => &[
                "fabric",
                "size",
                "color",
                "stitching",
                "zipper",
                "buttons",
                "pockets",
                "sleeves",
                "collar",
                "waist",
                "length",
                "lining",
                "elastic",
                "strap",
                "sole",
                "heel",
                "material",
                "print",
                "fit",
                "seam",
                "hood",
                "cuff",
                "belt",
                "laces",
                "padding",
                "breathability",
                "warmth",
                "price",
                "style",
                "washing",
            ],
        };
        terms.iter().map(|s| s.to_string()).collect()
    }

    /// A config scaled to roughly `num_products` products, mirroring the
    /// per-category averages of Table 2 (comparison-list length and
    /// reviews/product).
    pub fn config(self, num_products: usize, seed: u64) -> SynthConfig {
        let (avg_comp, avg_rev) = match self {
            CategoryPreset::Cellphone => (25.57, 18.64),
            CategoryPreset::Toy => (34.33, 14.06),
            CategoryPreset::Clothing => (12.03, 12.10),
        };
        // Comparison lists cannot exceed the cluster population; scale the
        // target length down for tiny corpora.
        let cluster_size = 40usize;
        let num_clusters = (num_products / cluster_size).max(1);
        let avg_comparisons = f64::min(avg_comp, (cluster_size as f64 - 1.0) * 0.9);
        SynthConfig {
            name: self.name().to_string(),
            aspects: self.aspects(),
            num_products,
            num_reviewers: (num_products as f64 * 2.2) as usize + 5,
            num_clusters,
            aspects_per_cluster: 12,
            avg_reviews_per_product: avg_rev,
            max_reviews_per_product: 120,
            reviewless_probability: 0.08,
            avg_comparisons,
            mentions_per_review: (1, 2),
            positive_ratio: 0.72,
            neutral_ratio: 0.08,
            seed,
        }
    }
}

impl SynthConfig {
    /// Generate the corpus.
    ///
    /// # Panics
    /// Panics if the configuration is structurally impossible (no aspects,
    /// no products, `aspects_per_cluster` of zero).
    pub fn generate(&self) -> Dataset {
        assert!(!self.aspects.is_empty(), "need at least one aspect");
        assert!(self.num_products > 0, "need at least one product");
        assert!(self.aspects_per_cluster > 0, "need aspects per cluster");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let z = self.aspects.len();
        let k_aspects = self.aspects_per_cluster.min(z);

        // --- Cluster profiles -------------------------------------------------
        struct Cluster {
            /// Active aspects with sampling weights (descending).
            aspect_weights: Vec<(usize, f64)>,
            /// Per-active-aspect probability of a positive opinion.
            quality: Vec<f64>,
        }
        let mut clusters = Vec::with_capacity(self.num_clusters);
        for _ in 0..self.num_clusters {
            let mut idx: Vec<usize> = (0..z).collect();
            idx.shuffle(&mut rng);
            idx.truncate(k_aspects);
            // Zipf-ish weights: first aspects dominate, like real corpora.
            let aspect_weights: Vec<(usize, f64)> = idx
                .iter()
                .enumerate()
                .map(|(rank, &a)| (a, 1.0 / (rank as f64 + 1.0)))
                .collect();
            let quality: Vec<f64> = (0..k_aspects)
                .map(|_| (self.positive_ratio + rng.random_range(-0.25..0.25)).clamp(0.05, 0.95))
                .collect();
            clusters.push(Cluster {
                aspect_weights,
                quality,
            });
        }

        // --- Products ---------------------------------------------------------
        let cluster_of: Vec<usize> = (0..self.num_products)
            .map(|i| i % self.num_clusters)
            .collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.num_clusters];
        for (p, &c) in cluster_of.iter().enumerate() {
            members[c].push(p);
        }

        let mut products: Vec<Product> = (0..self.num_products)
            .map(|i| Product {
                id: ProductId(i as u32),
                title: format!("{} product #{i}", self.name),
                also_bought: Vec::new(),
                reviews: Vec::new(),
            })
            .collect();

        // Per-product perturbed profiles. Crucially, each product keeps
        // only a random *subset* of its cluster's aspects: real
        // co-purchased items overlap on some aspects and differ on others
        // — including sometimes lacking the target's dominant aspects —
        // which is exactly the diversity the synchronized CompaReSetS+
        // objective exploits (Figure 2 of the paper). At least two
        // aspects are always kept so comparison remains possible.
        let mut product_weights: Vec<Vec<(usize, f64)>> = Vec::with_capacity(self.num_products);
        let mut product_quality: Vec<Vec<f64>> = Vec::with_capacity(self.num_products);
        for &c in &cluster_of {
            let cl = &clusters[c];
            let n_cluster = cl.aspect_weights.len();
            let mut keep: Vec<bool> = (0..n_cluster).map(|_| !rng.random_bool(0.35)).collect();
            // Force at least two kept aspects (uniformly chosen).
            while keep.iter().filter(|&&k| k).count() < 2.min(n_cluster) {
                keep[rng.random_range(0..n_cluster)] = true;
            }
            let mut w: Vec<(usize, f64)> = Vec::with_capacity(n_cluster);
            let mut q: Vec<f64> = Vec::with_capacity(n_cluster);
            for (rank, (&(a, base_w), &base_q)) in
                cl.aspect_weights.iter().zip(cl.quality.iter()).enumerate()
            {
                if !keep[rank] {
                    continue; // this product simply lacks the aspect
                }
                w.push((a, (base_w * rng.random_range(0.6..1.4_f64)).max(1e-3)));
                q.push((base_q + rng.random_range(-0.15..0.15)).clamp(0.02, 0.98));
            }
            product_weights.push(w);
            product_quality.push(q);
        }

        // --- Reviews ----------------------------------------------------------
        let mut reviews: Vec<Review> = Vec::new();
        for p in 0..self.num_products {
            if rng.random_bool(self.reviewless_probability) {
                continue;
            }
            let n_reviews = sample_count(&mut rng, self.avg_reviews_per_product)
                .clamp(1, self.max_reviews_per_product);
            for _ in 0..n_reviews {
                let id = ReviewId(reviews.len() as u32);
                let review = self.generate_review(
                    &mut rng,
                    id,
                    ProductId(p as u32),
                    &product_weights[p],
                    &product_quality[p],
                );
                products[p].reviews.push(id);
                reviews.push(review);
            }
        }

        // --- Also-bought lists -------------------------------------------------
        for p in 0..self.num_products {
            let c = cluster_of[p];
            let pool: Vec<usize> = members[c].iter().copied().filter(|&q| q != p).collect();
            if pool.is_empty() {
                continue;
            }
            let want = sample_count(&mut rng, self.avg_comparisons).clamp(1, pool.len());
            let mut chosen = pool;
            chosen.shuffle(&mut rng);
            chosen.truncate(want);
            chosen.sort_unstable();
            products[p].also_bought = chosen.into_iter().map(|q| ProductId(q as u32)).collect();
        }

        Dataset {
            name: self.name.clone(),
            aspects: self.aspects.clone(),
            products,
            reviews,
            num_reviewers: self.num_reviewers as u32,
        }
    }

    fn generate_review(
        &self,
        rng: &mut ChaCha8Rng,
        id: ReviewId,
        product: ProductId,
        weights: &[(usize, f64)],
        quality: &[f64],
    ) -> Review {
        let (lo, hi) = self.mentions_per_review;
        let n_mentions = rng.random_range(lo..=hi.max(lo)).min(weights.len().max(1));

        // Weighted sampling of aspects without replacement.
        let mut pool: Vec<(usize, f64, usize)> = weights
            .iter()
            .enumerate()
            .map(|(slot, &(a, w))| (a, w, slot))
            .collect();
        let mut mentions = Vec::with_capacity(n_mentions);
        let mut sentences = Vec::with_capacity(n_mentions + 2);

        if rng.random_bool(0.4) {
            sentences.push(
                templates::OPENERS[rng.random_range(0..templates::OPENERS.len())].to_string(),
            );
        }

        let mut sentiment_sum = 0.0;
        for _ in 0..n_mentions {
            if pool.is_empty() {
                break;
            }
            let total: f64 = pool.iter().map(|&(_, w, _)| w).sum();
            let mut t = rng.random_range(0.0..total);
            let mut pick = 0;
            for (i, &(_, w, _)) in pool.iter().enumerate() {
                if t < w {
                    pick = i;
                    break;
                }
                t -= w;
            }
            let (aspect, _, slot) = pool.swap_remove(pick);
            let polarity = if rng.random_bool(self.neutral_ratio) {
                Polarity::Neutral
            } else if rng.random_bool(quality[slot]) {
                Polarity::Positive
            } else {
                Polarity::Negative
            };
            sentiment_sum += polarity.score();
            mentions.push(AspectMention {
                aspect: AspectId(aspect as u32),
                polarity,
            });
            sentences.push(templates::render_sentence(
                &self.aspects[aspect],
                polarity,
                rng.random_range(0..64),
                rng.random_range(0..64),
            ));
        }

        if rng.random_bool(0.35) {
            let closer = if sentiment_sum >= 0.0 {
                templates::POSITIVE_CLOSERS[rng.random_range(0..templates::POSITIVE_CLOSERS.len())]
            } else {
                templates::NEGATIVE_CLOSERS[rng.random_range(0..templates::NEGATIVE_CLOSERS.len())]
            };
            sentences.push(closer.to_string());
        }

        let mean = if mentions.is_empty() {
            0.0
        } else {
            sentiment_sum / mentions.len() as f64
        };
        let rating = ((3.0 + 2.0 * mean).round() as i32).clamp(1, 5) as u8;

        let mut text = String::new();
        for s in &sentences {
            text.push_str(s);
            text.push_str(". ");
        }
        let text = text.trim_end().to_string();

        Review {
            id,
            product,
            reviewer: rng.random_range(0..self.num_reviewers as u32),
            rating,
            text,
            mentions,
        }
    }
}

/// Sample a count with mean `mean` from a geometric-like distribution
/// (heavier tail than Poisson, closer to review-count distributions).
fn sample_count(rng: &mut ChaCha8Rng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    // Exponential with the given mean, rounded; cheap and tail-heavy.
    let u: f64 = rng.random_range(0.0_f64..1.0).max(1e-12);
    (-mean * u.ln()).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(preset: CategoryPreset) -> Dataset {
        preset.config(60, 42).generate()
    }

    #[test]
    fn generates_consistent_dataset() {
        for preset in CategoryPreset::ALL {
            let d = small(preset);
            assert!(d.validate().is_empty(), "{:?}", d.validate());
            assert_eq!(d.products.len(), 60);
            assert!(!d.reviews.is_empty());
        }
    }

    #[test]
    fn same_seed_same_corpus() {
        let a = small(CategoryPreset::Toy);
        let b = small(CategoryPreset::Toy);
        assert_eq!(a.reviews.len(), b.reviews.len());
        assert_eq!(a.reviews[0].text, b.reviews[0].text);
        assert_eq!(a.products[5].also_bought, b.products[5].also_bought);
    }

    #[test]
    fn different_seed_differs() {
        let a = CategoryPreset::Toy.config(60, 1).generate();
        let b = CategoryPreset::Toy.config(60, 2).generate();
        // Extremely unlikely to coincide.
        assert_ne!(
            (a.reviews.len(), a.reviews.first().map(|r| r.text.clone())),
            (b.reviews.len(), b.reviews.first().map(|r| r.text.clone()))
        );
    }

    #[test]
    fn most_products_have_reviews() {
        let d = small(CategoryPreset::Cellphone);
        let with = d.products.iter().filter(|p| !p.reviews.is_empty()).count();
        assert!(with >= 45, "only {with}/60 products have reviews");
    }

    #[test]
    fn mentions_reference_valid_aspects() {
        let d = small(CategoryPreset::Clothing);
        let z = d.num_aspects() as u32;
        for r in &d.reviews {
            assert!(!r.mentions.is_empty());
            for m in &r.mentions {
                assert!(m.aspect.0 < z);
            }
        }
    }

    #[test]
    fn review_text_mentions_the_aspect_terms() {
        let d = small(CategoryPreset::Cellphone);
        for r in d.reviews.iter().take(50) {
            for m in &r.mentions {
                let term = &d.aspects[m.aspect.0 as usize];
                assert!(
                    r.text.contains(term),
                    "review text {:?} missing aspect {term}",
                    r.text
                );
            }
        }
    }

    #[test]
    fn opinion_skew_is_roughly_positive() {
        let d = small(CategoryPreset::Toy);
        let mut pos = 0usize;
        let mut neg = 0usize;
        for r in &d.reviews {
            for m in &r.mentions {
                match m.polarity {
                    Polarity::Positive => pos += 1,
                    Polarity::Negative => neg += 1,
                    Polarity::Neutral => {}
                }
            }
        }
        let ratio = pos as f64 / (pos + neg) as f64;
        assert!((0.5..0.95).contains(&ratio), "positive ratio {ratio}");
    }

    #[test]
    fn also_bought_stays_within_bounds_and_no_self() {
        let d = small(CategoryPreset::Toy);
        for p in &d.products {
            for ab in &p.also_bought {
                assert!(ab.0 < d.products.len() as u32);
                assert_ne!(*ab, p.id);
            }
        }
    }

    #[test]
    fn instances_are_plentiful() {
        let d = small(CategoryPreset::Cellphone);
        let insts = d.instances();
        assert!(insts.len() >= 40, "{} instances", insts.len());
        for inst in &insts {
            assert!(inst.len() >= 2);
        }
    }

    #[test]
    fn ratings_track_sentiment() {
        let d = small(CategoryPreset::Clothing);
        // All-positive reviews should never get rating 1; all-negative never 5.
        for r in &d.reviews {
            let all_pos = r.mentions.iter().all(|m| m.polarity == Polarity::Positive);
            let all_neg = r.mentions.iter().all(|m| m.polarity == Polarity::Negative);
            if all_pos {
                assert!(r.rating >= 4, "all-positive review rated {}", r.rating);
            }
            if all_neg {
                assert!(r.rating <= 2, "all-negative review rated {}", r.rating);
            }
        }
    }

    #[test]
    fn sample_count_mean_is_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| sample_count(&mut rng, 10.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((8.0..12.0).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "aspect")]
    fn empty_aspects_panics() {
        let mut cfg = CategoryPreset::Toy.config(5, 1);
        cfg.aspects.clear();
        let _ = cfg.generate();
    }
}
