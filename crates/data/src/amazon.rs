//! Loader for the Amazon Product Review Dataset format (McAuley et al.,
//! <http://jmcauley.ucsd.edu/data/amazon/>) — the corpus the paper
//! evaluates on (§4.1.1).
//!
//! Two JSON-lines files are consumed:
//!
//! * **reviews** — one object per line with at least `reviewerID`, `asin`,
//!   `reviewText`, `overall` (e.g. `reviews_Cell_Phones_and_Accessories_5.json`);
//! * **metadata** — one object per line with `asin`, optional `title`, and
//!   `related.also_bought` (e.g. `meta_Cell_Phones_and_Accessories.json`).
//!   The original metadata uses Python-literal quoting; this parser accepts
//!   strict JSON (convert with the dataset's published snippet) and is
//!   lenient about unknown fields.
//!
//! Since the paper's aspect-sentiment annotations (Le & Lauw WSDM'21) are
//! not redistributable, loaded reviews are annotated on the fly with the
//! frequency-based extractor from `comparesets-text` — the documented
//! substitution (DESIGN.md §1). Pass a pre-built
//! [`comparesets_text::AspectExtractor`] to control the vocabulary, or let
//! [`AmazonLoader::load`] discover one from the corpus.

use crate::model::{
    AspectId, AspectMention, Dataset, Polarity, Product, ProductId, Review, ReviewId,
};
use comparesets_text::{AspectExtractor, Sentiment};
use serde::Deserialize;
use std::collections::HashMap;
use std::io::BufRead;

/// One line of the review file (unknown fields ignored).
#[derive(Debug, Deserialize)]
struct RawReview {
    #[serde(rename = "reviewerID")]
    reviewer_id: String,
    asin: String,
    #[serde(rename = "reviewText", default)]
    review_text: String,
    #[serde(default)]
    overall: f64,
}

/// `related` sub-object of the metadata file.
#[derive(Debug, Deserialize, Default)]
struct RawRelated {
    #[serde(default)]
    also_bought: Vec<String>,
}

/// One line of the metadata file (unknown fields ignored).
#[derive(Debug, Deserialize)]
struct RawMeta {
    asin: String,
    #[serde(default)]
    title: Option<String>,
    #[serde(default)]
    related: Option<RawRelated>,
}

/// Errors from the Amazon-format loader.
#[derive(Debug)]
pub enum AmazonError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line failed to parse as JSON.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The serde error.
        source: serde_json::Error,
    },
    /// The corpus contained no usable review.
    Empty,
}

impl std::fmt::Display for AmazonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmazonError::Io(e) => write!(f, "io error: {e}"),
            AmazonError::Parse { line, source } => {
                write!(f, "parse error on line {line}: {source}")
            }
            AmazonError::Empty => write!(f, "no usable reviews in corpus"),
        }
    }
}

impl std::error::Error for AmazonError {}

impl From<std::io::Error> for AmazonError {
    fn from(e: std::io::Error) -> Self {
        AmazonError::Io(e)
    }
}

/// Malformed-line accounting for one load: how many JSON-lines were
/// skipped under the loader's error budget, and what the first failure
/// looked like (real-world dumps are routinely a few lines short of
/// clean).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SkippedLines {
    /// Malformed lines skipped in the reviews file.
    pub reviews: usize,
    /// Malformed lines skipped in the metadata file.
    pub metadata: usize,
    /// The first skipped line, rendered as `"<file> line <n>: <cause>"`.
    pub first_error: Option<String>,
}

impl SkippedLines {
    /// Total lines skipped across both files.
    pub fn total(&self) -> usize {
        self.reviews + self.metadata
    }

    fn record(&mut self, file: &str, line: usize, source: &serde_json::Error) {
        if self.first_error.is_none() {
            self.first_error = Some(format!("{file} line {line}: {source}"));
        }
        match file {
            "reviews" => self.reviews += 1,
            _ => self.metadata += 1,
        }
    }
}

/// Configuration of the loader.
#[derive(Debug, Clone)]
pub struct AmazonLoader {
    /// Dataset name (e.g. "Cellphone").
    pub name: String,
    /// Size of the discovered aspect vocabulary (paper keeps top-500 of
    /// 2000 candidate concepts; tune to corpus size).
    pub max_aspects: usize,
    /// Minimum number of reviews an aspect term must appear in.
    pub min_aspect_count: usize,
    /// Drop products with fewer reviews than this (the paper's 5-core
    /// data guarantees ≥ 5).
    pub min_reviews_per_product: usize,
    /// Number of malformed JSON-lines tolerated (summed over both input
    /// files) before the load fails. 0 — the default — keeps the strict
    /// behaviour: the first bad line is an error. Skips are counted in
    /// [`SkippedLines`]; use [`AmazonLoader::load_with_report`] to see
    /// them.
    pub error_budget: usize,
}

impl Default for AmazonLoader {
    fn default() -> Self {
        AmazonLoader {
            name: "Amazon".to_string(),
            max_aspects: 500,
            min_aspect_count: 3,
            min_reviews_per_product: 1,
            error_budget: 0,
        }
    }
}

impl AmazonLoader {
    /// Load a dataset from JSON-lines readers, discovering the aspect
    /// vocabulary from the review texts.
    ///
    /// # Errors
    /// IO and per-line parse errors; [`AmazonError::Empty`] when nothing
    /// usable was read.
    pub fn load<R1: BufRead, R2: BufRead>(
        &self,
        reviews: R1,
        metadata: R2,
    ) -> Result<Dataset, AmazonError> {
        self.load_with_report(reviews, metadata).map(|(ds, _)| ds)
    }

    /// [`AmazonLoader::load`] plus malformed-line accounting: the returned
    /// [`SkippedLines`] says how many lines were skipped under
    /// [`AmazonLoader::error_budget`] and quotes the first failure.
    ///
    /// # Errors
    /// As for [`AmazonLoader::load`]; a parse error surfaces only once the
    /// budget is exhausted.
    pub fn load_with_report<R1: BufRead, R2: BufRead>(
        &self,
        reviews: R1,
        metadata: R2,
    ) -> Result<(Dataset, SkippedLines), AmazonError> {
        let mut skipped = SkippedLines::default();
        let raw_reviews = read_reviews(reviews, self.error_budget, &mut skipped)?;
        if raw_reviews.is_empty() {
            return Err(AmazonError::Empty);
        }
        let extractor = AspectExtractor::discover(
            raw_reviews.iter().map(|r| r.review_text.as_str()),
            self.max_aspects,
            self.min_aspect_count,
        );
        let ds = self.load_with_extractor(raw_reviews, metadata, &extractor, &mut skipped)?;
        Ok((ds, skipped))
    }

    /// Load with a caller-supplied aspect extractor (fixed vocabulary).
    ///
    /// # Errors
    /// As for [`AmazonLoader::load`].
    pub fn load_with_vocabulary<R1: BufRead, R2: BufRead>(
        &self,
        reviews: R1,
        metadata: R2,
        extractor: &AspectExtractor,
    ) -> Result<Dataset, AmazonError> {
        let mut skipped = SkippedLines::default();
        let raw_reviews = read_reviews(reviews, self.error_budget, &mut skipped)?;
        if raw_reviews.is_empty() {
            return Err(AmazonError::Empty);
        }
        self.load_with_extractor(raw_reviews, metadata, extractor, &mut skipped)
    }

    fn load_with_extractor<R2: BufRead>(
        &self,
        raw_reviews: Vec<RawReview>,
        metadata: R2,
        extractor: &AspectExtractor,
        skipped: &mut SkippedLines,
    ) -> Result<Dataset, AmazonError> {
        let metas = read_metadata(metadata, self.error_budget, skipped)?;

        // Assign product ids to every asin seen in reviews (metadata may
        // cover a superset; products without reviews are retained only if
        // they appear in an also-bought list, matching how the paper's
        // comparison lists can point at low-review products).
        let mut product_of_asin: HashMap<String, u32> = HashMap::new();
        let mut products: Vec<Product> = Vec::new();
        let mut intern = |asin: &str, products: &mut Vec<Product>| -> u32 {
            if let Some(&id) = product_of_asin.get(asin) {
                return id;
            }
            let id = products.len() as u32;
            product_of_asin.insert(asin.to_string(), id);
            products.push(Product {
                id: ProductId(id),
                title: asin.to_string(),
                also_bought: Vec::new(),
                reviews: Vec::new(),
            });
            id
        };

        // Reviews + reviewer interning + on-the-fly annotation.
        let mut reviewer_of: HashMap<String, u32> = HashMap::new();
        let mut reviews: Vec<Review> = Vec::with_capacity(raw_reviews.len());
        for raw in raw_reviews {
            let pid = intern(&raw.asin, &mut products);
            let reviewer = {
                let next = reviewer_of.len() as u32;
                *reviewer_of.entry(raw.reviewer_id).or_insert(next)
            };
            let mentions: Vec<AspectMention> = extractor
                .extract(&raw.review_text)
                .into_iter()
                .filter_map(|op| {
                    let aspect = extractor.aspect_index(&op.aspect)? as u32;
                    let polarity = match op.sentiment {
                        Some(Sentiment::Positive) => Polarity::Positive,
                        Some(Sentiment::Negative) => Polarity::Negative,
                        None => Polarity::Neutral,
                    };
                    Some(AspectMention {
                        aspect: AspectId(aspect),
                        polarity,
                    })
                })
                .collect();
            if mentions.is_empty() {
                continue; // unusable for aspect-based selection
            }
            let id = ReviewId(reviews.len() as u32);
            products[pid as usize].reviews.push(id);
            reviews.push(Review {
                id,
                product: ProductId(pid),
                reviewer,
                rating: (raw.overall.round() as i64).clamp(1, 5) as u8,
                text: raw.review_text,
                mentions,
            });
        }
        if reviews.is_empty() {
            return Err(AmazonError::Empty);
        }

        // Metadata: titles and also-bought lists. Only asins already
        // interned (i.e. with reviews) or referenced become products.
        for meta in metas {
            let Some(&pid) = product_of_asin.get(&meta.asin) else {
                continue;
            };
            if let Some(title) = meta.title {
                products[pid as usize].title = title;
            }
            if let Some(related) = meta.related {
                let mut ab: Vec<ProductId> = related
                    .also_bought
                    .iter()
                    .filter_map(|asin| product_of_asin.get(asin))
                    .map(|&id| ProductId(id))
                    .filter(|&id| id != ProductId(pid))
                    .collect();
                ab.sort_unstable();
                ab.dedup();
                products[pid as usize].also_bought = ab;
            }
        }

        // Drop under-reviewed products from comparison lists (5-core-like
        // filtering); the products themselves stay for index stability.
        let min = self.min_reviews_per_product;
        let reviewed_enough: Vec<bool> = products.iter().map(|p| p.reviews.len() >= min).collect();
        for p in &mut products {
            p.also_bought.retain(|ab| reviewed_enough[ab.0 as usize]);
        }

        Ok(Dataset {
            name: self.name.clone(),
            aspects: extractor.vocabulary().to_vec(),
            products,
            reviews,
            num_reviewers: reviewer_of.len() as u32,
        })
    }
}

fn read_reviews<R: BufRead>(
    reader: R,
    budget: usize,
    skipped: &mut SkippedLines,
) -> Result<Vec<RawReview>, AmazonError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<RawReview>(&line) {
            Ok(raw) => out.push(raw),
            Err(source) if skipped.total() < budget => skipped.record("reviews", idx + 1, &source),
            Err(source) => {
                return Err(AmazonError::Parse {
                    line: idx + 1,
                    source,
                })
            }
        }
    }
    Ok(out)
}

fn read_metadata<R: BufRead>(
    reader: R,
    budget: usize,
    skipped: &mut SkippedLines,
) -> Result<Vec<RawMeta>, AmazonError> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<RawMeta>(&line) {
            Ok(raw) => out.push(raw),
            Err(source) if skipped.total() < budget => skipped.record("metadata", idx + 1, &source),
            Err(source) => {
                return Err(AmazonError::Parse {
                    line: idx + 1,
                    source,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::io::Cursor;

    const REVIEWS: &str = r#"{"reviewerID":"A1","asin":"B001","reviewText":"The battery is great and the battery lasts.","overall":5.0}
{"reviewerID":"A2","asin":"B001","reviewText":"Terrible battery, poor case.","overall":1.0}
{"reviewerID":"A1","asin":"B002","reviewText":"The case is solid, nice case for travel.","overall":4.0}
{"reviewerID":"A3","asin":"B002","reviewText":"Battery works, case is good.","overall":4.0}
{"reviewerID":"A3","asin":"B003","reviewText":"Great battery here too.","overall":5.0}
"#;

    const META: &str = r#"{"asin":"B001","title":"Acme Charger","related":{"also_bought":["B002","B003","B999"]}}
{"asin":"B002","title":"Budget Charger","related":{"also_bought":["B001"]}}
{"asin":"B003","title":"Premium Charger"}
"#;

    fn loader() -> AmazonLoader {
        AmazonLoader {
            name: "TestAmazon".into(),
            max_aspects: 10,
            min_aspect_count: 1,
            min_reviews_per_product: 1,
            error_budget: 0,
        }
    }

    #[test]
    fn loader_survives_transient_faults_through_a_retry_reader() {
        use crate::retry::{RetryPolicy, RetryReader};
        use std::io::{BufReader, Read};

        /// Injects a transient failure before every other read.
        struct Flaky<'a> {
            data: Cursor<&'a [u8]>,
            reads: usize,
            faults: usize,
        }
        impl Read for Flaky<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.reads += 1;
                if self.reads % 2 == 1 && self.faults > 0 {
                    self.faults -= 1;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "injected",
                    ));
                }
                // One byte at a time maximises fault-injection sites.
                let mut one = [0u8; 1];
                let n = self.data.read(&mut one)?;
                if n > 0 {
                    buf[0] = one[0];
                }
                Ok(n)
            }
        }

        let clean = loader()
            .load(Cursor::new(REVIEWS), Cursor::new(META))
            .unwrap();
        let flaky_reviews = RetryReader::new(
            Flaky {
                data: Cursor::new(REVIEWS.as_bytes()),
                reads: 0,
                faults: 40,
            },
            RetryPolicy::immediate(2),
        );
        let flaky_meta = RetryReader::new(
            Flaky {
                data: Cursor::new(META.as_bytes()),
                reads: 0,
                faults: 40,
            },
            RetryPolicy::immediate(2),
        );
        let ds = loader()
            .load(BufReader::new(flaky_reviews), BufReader::new(flaky_meta))
            .unwrap();
        assert_eq!(ds.products.len(), clean.products.len());
        assert_eq!(ds.reviews.len(), clean.reviews.len());
        assert_eq!(ds.aspects, clean.aspects);
    }

    #[test]
    fn loads_and_links_products() {
        let ds = loader()
            .load(Cursor::new(REVIEWS), Cursor::new(META))
            .unwrap();
        assert!(ds.validate().is_empty(), "{:?}", ds.validate());
        assert_eq!(ds.name, "TestAmazon");
        assert_eq!(ds.products.len(), 3);
        assert_eq!(ds.num_reviewers, 3);
        // Titles come from metadata.
        assert_eq!(ds.products[0].title, "Acme Charger");
        // also_bought resolves known asins and drops B999.
        assert_eq!(ds.products[0].also_bought, vec![ProductId(1), ProductId(2)]);
        // Aspects discovered from text.
        assert!(ds.aspects.iter().any(|a| a == "battery"));
        assert!(ds.aspects.iter().any(|a| a == "case"));
    }

    #[test]
    fn annotations_capture_polarity() {
        let ds = loader()
            .load(Cursor::new(REVIEWS), Cursor::new(META))
            .unwrap();
        let battery = ds.aspects.iter().position(|a| a == "battery").unwrap() as u32;
        let first = &ds.reviews[0];
        let m = first
            .mentions
            .iter()
            .find(|m| m.aspect.0 == battery)
            .expect("battery mention");
        assert_eq!(m.polarity, Polarity::Positive);
        // Second review is negative on battery.
        let second = &ds.reviews[1];
        let m2 = second
            .mentions
            .iter()
            .find(|m| m.aspect.0 == battery)
            .unwrap();
        assert_eq!(m2.polarity, Polarity::Negative);
    }

    #[test]
    fn instances_form_from_also_bought() {
        let ds = loader()
            .load(Cursor::new(REVIEWS), Cursor::new(META))
            .unwrap();
        let instances = ds.instances();
        assert!(!instances.is_empty());
        assert_eq!(instances[0].target(), ProductId(0));
        assert_eq!(instances[0].comparatives().len(), 2);
    }

    #[test]
    fn min_reviews_filter_prunes_comparisons() {
        let mut l = loader();
        l.min_reviews_per_product = 2;
        let ds = l.load(Cursor::new(REVIEWS), Cursor::new(META)).unwrap();
        // B003 has a single review → removed from comparison lists.
        assert_eq!(ds.products[0].also_bought, vec![ProductId(1)]);
    }

    #[test]
    fn fixed_vocabulary_is_respected() {
        let extractor =
            AspectExtractor::with_vocabulary(["battery"], comparesets_text::Lexicon::builtin());
        let ds = loader()
            .load_with_vocabulary(Cursor::new(REVIEWS), Cursor::new(META), &extractor)
            .unwrap();
        assert_eq!(ds.aspects, vec!["battery".to_string()]);
        for r in &ds.reviews {
            for m in &r.mentions {
                assert_eq!(m.aspect, AspectId(0));
            }
        }
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let bad = "{\"reviewerID\":\"A1\",\"asin\":\"B1\",\"reviewText\":\"great battery\",\"overall\":5}\nnot json\n";
        let err = loader()
            .load(Cursor::new(bad), Cursor::new(""))
            .unwrap_err();
        match err {
            AmazonError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_corpus_is_an_error() {
        let err = loader().load(Cursor::new(""), Cursor::new("")).unwrap_err();
        assert!(matches!(err, AmazonError::Empty));
        // Reviews with no recognisable aspects are unusable too (tokens
        // shorter than 3 characters are never discovered as aspects).
        let no_aspects =
            r#"{"reviewerID":"A","asin":"B","reviewText":"zz qq ab","overall":3}"#.to_string();
        let err2 = loader()
            .load(Cursor::new(no_aspects), Cursor::new(""))
            .unwrap_err();
        assert!(matches!(err2, AmazonError::Empty));
    }

    #[test]
    fn error_budget_skips_corrupted_lines_and_reports_them() {
        // A real-world-shaped corrupted dump: truncated JSON, a stray
        // non-JSON line, and a bad metadata line among healthy records.
        let corrupt_reviews = r#"{"reviewerID":"A1","asin":"B001","reviewText":"The battery is great.","overall":5.0}
{"reviewerID":"A2","asin":"B001","reviewText":"Terrible batt
not json at all
{"reviewerID":"A3","asin":"B002","reviewText":"Battery works, case is good.","overall":4.0}
"#;
        let corrupt_meta = "{\"asin\":\"B001\",\"title\":\"Acme Charger\"}\n{broken\n";

        // Strict default: the first malformed line is a hard error.
        let strict_err = loader()
            .load(Cursor::new(corrupt_reviews), Cursor::new(corrupt_meta))
            .unwrap_err();
        assert!(matches!(strict_err, AmazonError::Parse { line: 2, .. }));

        // With a sufficient budget the healthy lines load and the skips
        // are accounted for, first failure quoted.
        let mut l = loader();
        l.error_budget = 3;
        let (ds, skipped) = l
            .load_with_report(Cursor::new(corrupt_reviews), Cursor::new(corrupt_meta))
            .unwrap();
        assert_eq!(ds.reviews.len(), 2);
        assert_eq!(skipped.reviews, 2);
        assert_eq!(skipped.metadata, 1);
        assert_eq!(skipped.total(), 3);
        let first = skipped.first_error.as_deref().unwrap();
        assert!(first.starts_with("reviews line 2:"), "{first}");

        // A budget smaller than the number of bad lines still fails, on
        // the first line past the budget.
        let mut tight = loader();
        tight.error_budget = 2;
        let err = tight
            .load(Cursor::new(corrupt_reviews), Cursor::new(corrupt_meta))
            .unwrap_err();
        assert!(matches!(err, AmazonError::Parse { line: 2, .. }), "{err:?}");
    }

    #[test]
    fn rating_is_clamped() {
        let odd = r#"{"reviewerID":"A","asin":"B","reviewText":"great battery","overall":9.7}"#;
        let ds = loader().load(Cursor::new(odd), Cursor::new("")).unwrap();
        assert_eq!(ds.reviews[0].rating, 5);
    }
}
