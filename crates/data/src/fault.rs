//! Deterministic fault injection for the durable store.
//!
//! Crash-safety claims are only as good as the failures they were tested
//! against. This module provides a [`FaultPlane`] — a seeded,
//! schedule-driven injector consulted at every durability-critical I/O
//! site in [`crate::wal`] and [`crate::io::write_atomic_with`] — so the
//! WAL + snapshot machinery can be driven through thousands of
//! *reproducible* fault schedules: short (torn) writes, failed fsyncs,
//! disk-full, bit-flips on read, and injected latency. The same seed
//! always yields the same schedule, so a violated invariant is a bug
//! report with a replay command attached.
//!
//! [`run_fault_schedule`] is the single-store chaos harness built on
//! top: one seeded episode of append/snapshot/crash/recover cycles that
//! asserts the store's standing invariant — the acknowledged prefix
//! recovers byte-identical, and anything extra recovery surfaces is a
//! clean prefix of what was submitted. `comparesets chaos` and the
//! serve-side chaos tests both drive it.

use crate::model::{AspectId, AspectMention, Dataset, Polarity, ProductId, ReviewId};
use crate::wal::{recover, CorpusStore, EventKind, ReviewEvent};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The I/O primitive a durability path is about to run; the plane picks
/// faults appropriate to each (a read cannot short-write, a rename
/// cannot bit-flip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Appending framed records to the WAL.
    WalWrite,
    /// The fsync that acknowledges a WAL batch.
    WalFsync,
    /// Rolling a failed WAL append back to the pre-append length.
    WalTruncate,
    /// Reading the WAL during a scan/recovery.
    WalRead,
    /// Writing the temp file inside an atomic write (snapshots,
    /// checkpoints, compacted WALs).
    AtomicWrite,
    /// The rename that publishes an atomic write.
    Rename,
}

/// What the plane injects at one consulted I/O site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault; run the real operation.
    Pass,
    /// Sleep before the operation (fail-slow device, contended mount).
    Delay(Duration),
    /// Fail the operation outright with a generic I/O error.
    Fail,
    /// Fail with `ENOSPC` — the fatal, no-retry class (see
    /// [`crate::io::is_disk_fatal`]).
    DiskFull,
    /// Write only the given per-mille prefix of the buffer, then fail —
    /// a torn write as a crash would leave it.
    ShortWrite(u32),
    /// Flip one bit of the buffer just read, at this pseudo-random
    /// index (the site reduces it modulo the buffer length).
    BitFlip(u64),
}

/// Per-1024 probabilities for each fault class. Classes that do not
/// apply to an op (bit-flips on writes, short writes on reads) are
/// skipped without consuming probability mass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// Generic I/O failure.
    pub fail: u16,
    /// `ENOSPC` on writes/fsyncs.
    pub disk_full: u16,
    /// Torn write on write ops.
    pub short_write: u16,
    /// Single-bit corruption on read ops.
    pub bit_flip: u16,
    /// Injected latency (0.2–2 ms).
    pub delay: u16,
}

impl FaultProfile {
    /// The write-fault mix the chaos harness runs: every write-side
    /// failure class is live, reads stay clean so the acked-prefix
    /// invariant is exact (a bit-flip inside acked data is unrecoverable
    /// by design — CRCs detect it, only replicas could repair it).
    pub fn chaos() -> Self {
        FaultProfile {
            fail: 48,
            disk_full: 16,
            short_write: 48,
            bit_flip: 0,
            delay: 24,
        }
    }

    /// A silent profile: the plane is wired through but never fires
    /// (baseline runs, latency-overhead measurements).
    pub fn quiet() -> Self {
        FaultProfile {
            fail: 0,
            disk_full: 0,
            short_write: 0,
            bit_flip: 0,
            delay: 0,
        }
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::chaos()
    }
}

/// xorshift64* — the same tiny seeded generator the retry jitter uses.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A seeded fault injector. Thread it into a [`CorpusStore`] (via
/// [`CorpusStore::set_fault_plane`]) or [`crate::io::write_atomic_with`]
/// and every consulted I/O site draws its fate from one deterministic
/// stream: same seed, same profile, same consultation order → the same
/// faults, every run.
#[derive(Debug)]
pub struct FaultPlane {
    profile: FaultProfile,
    state: Mutex<u64>,
    injected: AtomicU64,
}

impl FaultPlane {
    /// A plane with the default [`FaultProfile::chaos`] mix.
    pub fn from_seed(seed: u64) -> Self {
        FaultPlane::with_profile(seed, FaultProfile::chaos())
    }

    /// A plane with an explicit fault mix.
    pub fn with_profile(seed: u64, profile: FaultProfile) -> Self {
        FaultPlane {
            profile,
            state: Mutex::new(seed | 1), // xorshift state must be nonzero
            injected: AtomicU64::new(0),
        }
    }

    /// Draw the fate of the next `op`. Deterministic given the plane's
    /// seed and the sequence of consultations so far.
    pub fn next(&self, op: IoOp) -> FaultAction {
        let (roll, param) = {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (xorshift(&mut state), xorshift(&mut state))
        };
        let p = &self.profile;
        let classes: &[(u16, FaultAction)] = match op {
            IoOp::WalWrite | IoOp::AtomicWrite => &[
                (p.fail, FaultAction::Fail),
                (p.disk_full, FaultAction::DiskFull),
                (
                    p.short_write,
                    FaultAction::ShortWrite((param % 1000) as u32),
                ),
                (p.delay, FaultAction::Delay(delay_of(param))),
            ],
            IoOp::WalFsync => &[
                (p.fail, FaultAction::Fail),
                (p.disk_full, FaultAction::DiskFull),
                (p.delay, FaultAction::Delay(delay_of(param))),
            ],
            IoOp::WalTruncate | IoOp::Rename => &[
                (p.fail, FaultAction::Fail),
                (p.delay, FaultAction::Delay(delay_of(param))),
            ],
            IoOp::WalRead => &[
                (p.fail, FaultAction::Fail),
                (p.bit_flip, FaultAction::BitFlip(param)),
                (p.delay, FaultAction::Delay(delay_of(param))),
            ],
        };
        let roll = (roll % 1024) as u16;
        let mut cumulative = 0u16;
        for &(weight, action) in classes {
            cumulative = cumulative.saturating_add(weight);
            if roll < cumulative {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return action;
            }
        }
        FaultAction::Pass
    }

    /// Faults injected so far (every non-`Pass` draw).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

fn delay_of(param: u64) -> Duration {
    Duration::from_micros(200 + param % 1800)
}

/// The error an injected [`FaultAction::Fail`] surfaces as.
pub fn injected_error() -> io::Error {
    io::Error::other("injected i/o fault")
}

/// The error an injected [`FaultAction::DiskFull`] surfaces as: a real
/// `ENOSPC`, so classification ([`crate::io::is_disk_fatal`]) sees
/// exactly what a full disk would produce.
pub fn disk_full_error() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

// ---------------------------------------------------------------------
// Chaos schedule harness
// ---------------------------------------------------------------------

/// What one chaos schedule did (for aggregate reporting).
#[derive(Debug, Default, Clone, Copy)]
pub struct ScheduleOutcome {
    /// Events acknowledged (append returned `Ok`).
    pub acked: u64,
    /// Append batches that failed under injection.
    pub failed_appends: u64,
    /// Simulated crash + recover + reopen cycles.
    pub crashes: u64,
    /// Snapshot attempts (successful or injected-failed).
    pub snapshots: u64,
    /// Faults the plane injected over the schedule.
    pub faults_injected: u64,
}

/// Build one synthetic mutation event against `d` (mostly adds, with
/// occasional edits and deletes of listed reviews).
fn chaos_event(d: &Dataset, seq: u64, rng: &mut u64) -> ReviewEvent {
    let product = (xorshift(rng) % d.products.len().max(1) as u64) as u32;
    let listed = &d.products[product as usize].reviews;
    let kind_roll = xorshift(rng) % 10;
    let (kind, review) = if kind_roll >= 8 && !listed.is_empty() {
        let r = listed[(xorshift(rng) % listed.len() as u64) as usize];
        if kind_roll == 9 && listed.len() > 1 {
            (EventKind::Delete, r)
        } else {
            (EventKind::Edit, r)
        }
    } else {
        (EventKind::Add, ReviewId(d.reviews.len() as u32))
    };
    let aspect = (xorshift(rng) % d.aspects.len().max(1) as u64) as u32;
    ReviewEvent {
        seq,
        kind,
        product: ProductId(product),
        review,
        reviewer: d.num_reviewers,
        rating: 1 + (xorshift(rng) % 5) as u8,
        text: format!("chaos {seq}"),
        mentions: match kind {
            EventKind::Delete => vec![],
            _ => vec![AspectMention {
                aspect: AspectId(aspect),
                polarity: Polarity::Positive,
            }],
        },
    }
}

/// Recover `dir` fault-free and check the standing invariant against
/// the harness's own bookkeeping: everything acknowledged is present,
/// anything extra is a clean prefix of what was submitted, and the
/// recovered dataset is byte-identical to replaying that prefix.
fn verify_recovery(
    dir: &Path,
    seed_dataset: &Dataset,
    history: &[ReviewEvent],
    acked_last_seq: u64,
) -> Result<(Dataset, u64), String> {
    let rec = recover(dir, None).map_err(|e| format!("recovery failed: {e}"))?;
    if rec.last_seq < acked_last_seq {
        return Err(format!(
            "acked prefix lost: recovered last seq {} < acked last seq {acked_last_seq}",
            rec.last_seq
        ));
    }
    let submitted_last = history.last().map_or(0, |ev| ev.seq);
    if rec.last_seq > submitted_last {
        return Err(format!(
            "recovery invented records: last seq {} > submitted last seq {submitted_last}",
            rec.last_seq
        ));
    }
    let mut reference = seed_dataset.clone();
    for ev in history.iter().take_while(|ev| ev.seq <= rec.last_seq) {
        reference
            .apply_event(ev)
            .map_err(|e| format!("reference replay of seq {}: {e}", ev.seq))?;
    }
    let got = serde_json::to_string(&rec.dataset).map_err(|e| e.to_string())?;
    let want = serde_json::to_string(&reference).map_err(|e| e.to_string())?;
    if got != want {
        return Err(format!(
            "recovered dataset diverges from the acked prefix at seq {} \
             ({} vs {} bytes)",
            rec.last_seq,
            got.len(),
            want.len()
        ));
    }
    Ok((rec.dataset, rec.last_seq))
}

/// Run one seeded chaos schedule in `dir` (wiped first): a clean store
/// seeded from `seed_dataset`, then a deterministic mix of append
/// batches, snapshots, and simulated crashes (drop the store, optionally
/// smear a torn tail, recover fault-free, verify, reopen) — all under a
/// [`FaultPlane`] with the given profile.
///
/// # Errors
/// A human-readable invariant violation: the acknowledged prefix did not
/// recover byte-identical, or recovery surfaced records that were never
/// submitted. Setup failures (the initial fault-free open) also error.
pub fn run_fault_schedule(
    dir: &Path,
    seed_dataset: &Dataset,
    seed: u64,
    profile: &FaultProfile,
) -> Result<ScheduleOutcome, String> {
    let _ = std::fs::remove_dir_all(dir);
    let plane = Arc::new(FaultPlane::with_profile(seed, *profile));
    let (store, rec) = CorpusStore::open(dir, Some(seed_dataset), 0, None)
        .map_err(|e| format!("clean open: {e}"))?;
    let mut store = Some(store);
    if let Some(s) = store.as_mut() {
        s.set_fault_plane(Some(Arc::clone(&plane)));
    }

    let seed_dataset = rec.dataset.clone();
    let mut live = rec.dataset;
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = ScheduleOutcome::default();
    // Every event that may be durable, in seq order (history[i].seq == i+1):
    // acked batches, plus failed batches whose rollback could not run.
    let mut history: Vec<ReviewEvent> = Vec::new();
    let mut acked_last_seq = 0u64;

    let steps = 10 + xorshift(&mut rng) % 6;
    for _ in 0..steps {
        let s = store.as_mut().ok_or_else(|| "store lost".to_string())?;
        let roll = xorshift(&mut rng) % 100;
        let mut crash = false;
        if roll < 65 {
            // Append a small batch.
            let n = 1 + xorshift(&mut rng) % 3;
            let mut staged = live.clone();
            let mut batch = Vec::new();
            for k in 0..n {
                let ev = chaos_event(&staged, s.next_seq() + k, &mut rng);
                staged
                    .apply_event(&ev)
                    .map_err(|e| format!("staging seq {}: {e}", ev.seq))?;
                batch.push(ev);
            }
            match s.append(&batch) {
                Ok(()) => {
                    acked_last_seq = batch.last().map_or(acked_last_seq, |ev| ev.seq);
                    out.acked += n;
                    history.extend(batch);
                    live = staged;
                }
                Err(_) => {
                    out.failed_appends += 1;
                    if s.poisoned().is_some() {
                        // Rollback could not run: the failed batch may be
                        // partially durable. Treat it as submitted and crash.
                        history.extend(batch);
                        crash = true;
                    }
                }
            }
        } else if roll < 80 {
            out.snapshots += 1;
            if s.snapshot(&live).is_err() && s.poisoned().is_some() {
                crash = true;
            }
        } else {
            crash = true;
        }

        if crash {
            drop(store.take());
            out.crashes += 1;
            if xorshift(&mut rng).is_multiple_of(2) {
                // A crash mid-write leaves a torn tail; recovery must
                // truncate it without touching the acked prefix.
                let garbage_len = 1 + (xorshift(&mut rng) % 7) as usize;
                let mut garbage = vec![0u8; garbage_len];
                for b in &mut garbage {
                    *b = (xorshift(&mut rng) % 256) as u8;
                }
                use std::io::Write as _;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .append(true)
                    .open(dir.join(crate::wal::WAL_FILE))
                {
                    let _ = f.write_all(&garbage);
                }
            }
            let (_, recovered_seq) = verify_recovery(dir, &seed_dataset, &history, acked_last_seq)?;
            // Seqs past the recovered tip are gone from disk and will be
            // reused; forget their maybe-durable entries. History seqs
            // are contiguous from 1, so the surviving prefix length is
            // the recovered seq itself.
            history.truncate(recovered_seq as usize);
            acked_last_seq = recovered_seq;
            let (mut reopened, rec) = CorpusStore::open(dir, None, 0, None)
                .map_err(|e| format!("reopen after crash: {e}"))?;
            live = rec.dataset;
            reopened.set_fault_plane(Some(Arc::clone(&plane)));
            store = Some(reopened);
        }
    }

    drop(store.take());
    verify_recovery(dir, &seed_dataset, &history, acked_last_seq)?;
    out.faults_injected = plane.injected();
    let _ = std::fs::remove_dir_all(dir);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::synth::CategoryPreset;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comparesets_fault_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlane::from_seed(7);
        let b = FaultPlane::from_seed(7);
        let ops = [
            IoOp::WalWrite,
            IoOp::WalFsync,
            IoOp::AtomicWrite,
            IoOp::Rename,
            IoOp::WalRead,
        ];
        for i in 0..200 {
            let op = ops[i % ops.len()];
            assert_eq!(a.next(op), b.next(op), "draw {i}");
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn quiet_profile_never_fires() {
        let plane = FaultPlane::with_profile(3, FaultProfile::quiet());
        for _ in 0..500 {
            assert_eq!(plane.next(IoOp::WalWrite), FaultAction::Pass);
        }
        assert_eq!(plane.injected(), 0);
    }

    #[test]
    fn chaos_profile_injects_every_write_class() {
        let plane = FaultPlane::from_seed(0xC4A05);
        let mut seen_fail = false;
        let mut seen_full = false;
        let mut seen_short = false;
        for _ in 0..4000 {
            match plane.next(IoOp::WalWrite) {
                FaultAction::Fail => seen_fail = true,
                FaultAction::DiskFull => seen_full = true,
                FaultAction::ShortWrite(_) => seen_short = true,
                _ => {}
            }
        }
        assert!(seen_fail && seen_full && seen_short);
        assert!(plane.injected() > 0);
    }

    #[test]
    fn disk_full_error_classifies_as_fatal() {
        assert!(crate::io::is_disk_fatal(&disk_full_error()));
        assert!(!crate::io::is_disk_fatal(&injected_error()));
    }

    #[test]
    fn fault_schedules_hold_the_invariant() {
        let seed_ds = CategoryPreset::Toy.config(6, 5).generate();
        let dir = temp_dir("sched");
        for seed in 0..25u64 {
            let out = run_fault_schedule(&dir, &seed_ds, seed, &FaultProfile::chaos())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(out.acked > 0 || out.failed_appends > 0, "seed {seed} idle");
        }
    }

    #[test]
    fn quiet_schedules_never_fail_appends() {
        let seed_ds = CategoryPreset::Toy.config(6, 5).generate();
        let dir = temp_dir("quiet");
        for seed in 0..5u64 {
            let out = run_fault_schedule(&dir, &seed_ds, seed, &FaultProfile::quiet())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(out.failed_appends, 0, "seed {seed}");
            assert_eq!(out.faults_injected, 0, "seed {seed}");
        }
    }
}
