//! Corpus data model.
//!
//! Mirrors the paper's setting: a set of products 𝒫, each with reviews
//! ℛᵢ annotated with aspect mentions from a universal aspect set 𝒜, plus
//! "also bought" metadata from which comparison instances are built
//! (target item p₁ + comparative items p₂…pₙ, §4.1.1).

use serde::{Deserialize, Serialize};

/// Index of an aspect in the dataset's aspect vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AspectId(pub u32);

/// Index of a product within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProductId(pub u32);

/// Index of a review within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ReviewId(pub u32);

/// Opinion polarity of one aspect mention.
///
/// The paper's default scheme is binary (positive/negative); the
/// 3-polarity generalisation (§4.2.3) adds `Neutral`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Positive opinion on the aspect.
    Positive,
    /// Negative opinion on the aspect.
    Negative,
    /// Aspect mentioned without clear sentiment.
    Neutral,
}

impl Polarity {
    /// Signed unit score used by the unary-scale aggregation (§4.2.3).
    pub fn score(self) -> f64 {
        match self {
            Polarity::Positive => 1.0,
            Polarity::Negative => -1.0,
            Polarity::Neutral => 0.0,
        }
    }
}

/// One aspect mention inside a review.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AspectMention {
    /// Which aspect is discussed.
    pub aspect: AspectId,
    /// The opinion expressed on it.
    pub polarity: Polarity,
}

/// A product review with its annotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Review {
    /// Dataset-wide identifier.
    pub id: ReviewId,
    /// The reviewed product.
    pub product: ProductId,
    /// Anonymous reviewer index.
    pub reviewer: u32,
    /// Star rating 1–5.
    pub rating: u8,
    /// The review body.
    pub text: String,
    /// Aspect-opinion annotations (the paper treats these as given).
    pub mentions: Vec<AspectMention>,
}

/// A product with metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Product {
    /// Dataset-wide identifier.
    pub id: ProductId,
    /// Display title.
    pub title: String,
    /// "Also bought" products forming the comparison candidates.
    pub also_bought: Vec<ProductId>,
    /// Reviews of this product.
    pub reviews: Vec<ReviewId>,
}

/// A review corpus for one product category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Category name (e.g. "Cellphone").
    pub name: String,
    /// Universal aspect vocabulary 𝒜 (z = `aspects.len()`).
    pub aspects: Vec<String>,
    /// All products 𝒫.
    pub products: Vec<Product>,
    /// All reviews, indexable by [`ReviewId`].
    pub reviews: Vec<Review>,
    /// Number of distinct reviewers.
    pub num_reviewers: u32,
}

impl Dataset {
    /// Number of aspects z.
    pub fn num_aspects(&self) -> usize {
        self.aspects.len()
    }

    /// Look up a review.
    pub fn review(&self, id: ReviewId) -> &Review {
        &self.reviews[id.0 as usize]
    }

    /// Look up a product.
    pub fn product(&self, id: ProductId) -> &Product {
        &self.products[id.0 as usize]
    }

    /// Reviews of a product as a slice of ids.
    pub fn reviews_of(&self, id: ProductId) -> &[ReviewId] {
        &self.product(id).reviews
    }

    /// Build the comparison instances: one per *target product* that has at
    /// least one review and at least one also-bought product with reviews.
    /// This matches the paper's "#Target Product" accounting in Table 2.
    pub fn instances(&self) -> Vec<ComparisonInstance> {
        let mut out = Vec::new();
        for p in &self.products {
            if p.reviews.is_empty() {
                continue;
            }
            let comps: Vec<ProductId> = p
                .also_bought
                .iter()
                .copied()
                .filter(|c| !self.product(*c).reviews.is_empty())
                .collect();
            if comps.is_empty() {
                continue;
            }
            let mut items = Vec::with_capacity(comps.len() + 1);
            items.push(p.id);
            items.extend(comps);
            out.push(ComparisonInstance { items });
        }
        out
    }

    /// Validate internal consistency (index bounds, back references).
    /// Returns a list of human-readable problems; empty means valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let z = self.aspects.len() as u32;
        let np = self.products.len() as u32;
        let nr = self.reviews.len() as u32;
        for (i, p) in self.products.iter().enumerate() {
            if p.id.0 != i as u32 {
                problems.push(format!("product {} has id {:?}", i, p.id));
            }
            for r in &p.reviews {
                if r.0 >= nr {
                    problems.push(format!(
                        "product {} references review {:?} out of bounds",
                        i, r
                    ));
                } else if self.reviews[r.0 as usize].product != p.id {
                    problems.push(format!("review {:?} not back-linked to product {}", r, i));
                }
            }
            for ab in &p.also_bought {
                if ab.0 >= np {
                    problems.push(format!("product {} also-bought {:?} out of bounds", i, ab));
                }
                if *ab == p.id {
                    problems.push(format!("product {} lists itself as also-bought", i));
                }
            }
        }
        for (i, r) in self.reviews.iter().enumerate() {
            if r.id.0 != i as u32 {
                problems.push(format!("review {} has id {:?}", i, r.id));
            }
            if r.product.0 >= np {
                problems.push(format!(
                    "review {} references product {:?} out of bounds",
                    i, r.product
                ));
            }
            if !(1..=5).contains(&r.rating) {
                problems.push(format!("review {} has rating {}", i, r.rating));
            }
            for m in &r.mentions {
                if m.aspect.0 >= z {
                    problems.push(format!(
                        "review {} mentions aspect {:?} out of bounds",
                        i, m.aspect
                    ));
                }
            }
        }
        problems
    }
}

/// One problem instance: a target item (first element) plus its
/// comparative items, all guaranteed to have at least one review.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComparisonInstance {
    /// `items[0]` is the target p₁; the rest are comparative items.
    pub items: Vec<ProductId>,
}

impl ComparisonInstance {
    /// The target item p₁.
    pub fn target(&self) -> ProductId {
        self.items[0]
    }

    /// The comparative items p₂…pₙ.
    pub fn comparatives(&self) -> &[ProductId] {
        &self.items[1..]
    }

    /// Total number of items n.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// An instance always has at least the target item.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A copy truncated to at most `max_comparatives` comparative items.
    pub fn truncated(&self, max_comparatives: usize) -> ComparisonInstance {
        let n = 1 + max_comparatives.min(self.items.len().saturating_sub(1));
        ComparisonInstance {
            items: self.items[..n].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let mk_review = |id: u32, product: u32, aspect: u32, pol: Polarity| Review {
            id: ReviewId(id),
            product: ProductId(product),
            reviewer: id,
            rating: 4,
            text: format!("review {id}"),
            mentions: vec![AspectMention {
                aspect: AspectId(aspect),
                polarity: pol,
            }],
        };
        Dataset {
            name: "tiny".into(),
            aspects: vec!["battery".into(), "lens".into()],
            products: vec![
                Product {
                    id: ProductId(0),
                    title: "P0".into(),
                    also_bought: vec![ProductId(1), ProductId(2)],
                    reviews: vec![ReviewId(0)],
                },
                Product {
                    id: ProductId(1),
                    title: "P1".into(),
                    also_bought: vec![ProductId(0)],
                    reviews: vec![ReviewId(1)],
                },
                Product {
                    id: ProductId(2),
                    title: "P2".into(),
                    also_bought: vec![],
                    reviews: vec![],
                },
            ],
            reviews: vec![
                mk_review(0, 0, 0, Polarity::Positive),
                mk_review(1, 1, 1, Polarity::Negative),
            ],
            num_reviewers: 2,
        }
    }

    #[test]
    fn accessors() {
        let d = tiny_dataset();
        assert_eq!(d.num_aspects(), 2);
        assert_eq!(d.review(ReviewId(1)).product, ProductId(1));
        assert_eq!(d.product(ProductId(0)).title, "P0");
        assert_eq!(d.reviews_of(ProductId(0)), &[ReviewId(0)]);
    }

    #[test]
    fn instances_skip_reviewless_products() {
        let d = tiny_dataset();
        let insts = d.instances();
        // P0 -> [P1] (P2 has no reviews); P1 -> [P0]; P2 skipped.
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].target(), ProductId(0));
        assert_eq!(insts[0].comparatives(), &[ProductId(1)]);
        assert_eq!(insts[1].target(), ProductId(1));
    }

    #[test]
    fn validate_accepts_consistent_dataset() {
        assert!(tiny_dataset().validate().is_empty());
    }

    #[test]
    fn validate_flags_problems() {
        let mut d = tiny_dataset();
        d.reviews[0].rating = 9;
        d.products[0].also_bought.push(ProductId(0)); // self-loop
        d.reviews[1].mentions.push(AspectMention {
            aspect: AspectId(99),
            polarity: Polarity::Neutral,
        });
        let problems = d.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn truncated_instance_keeps_target() {
        let inst = ComparisonInstance {
            items: vec![ProductId(5), ProductId(1), ProductId(2), ProductId(3)],
        };
        let t = inst.truncated(2);
        assert_eq!(t.items, vec![ProductId(5), ProductId(1), ProductId(2)]);
        assert_eq!(t.target(), ProductId(5));
        let t0 = inst.truncated(0);
        assert_eq!(t0.len(), 1);
        assert!(!t0.is_empty());
    }

    #[test]
    fn polarity_scores() {
        assert_eq!(Polarity::Positive.score(), 1.0);
        assert_eq!(Polarity::Negative.score(), -1.0);
        assert_eq!(Polarity::Neutral.score(), 0.0);
    }
}
