//! Retrying reads for flaky ingestion sources.
//!
//! Corpus files often live on network filesystems or FUSE mounts where a
//! read can fail *transiently* — `Interrupted`, `WouldBlock`, `TimedOut`
//! — without the file being gone. [`RetryReader`] wraps any [`Read`] and
//! absorbs such failures with capped exponential backoff and
//! deterministic seeded jitter, so a multi-minute ingestion doesn't die
//! on a single EINTR. Fatal errors (`NotFound`, `PermissionDenied`,
//! corrupt-data, …) propagate immediately: retrying cannot fix them.
//!
//! Every retry is counted — on the reader itself, in an optional
//! [`SolverMetrics::io_retries`] collector, and as a `tracing` event per
//! attempt — so a run that limped through a flaky mount says so in its
//! metrics report instead of silently being slow.

use std::io::{self, Read};
use std::sync::Arc;
use std::time::Duration;

use comparesets_obs::SolverMetrics;

/// Retry schedule for transient read failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum consecutive retries for a single read before giving up
    /// and surfacing the transient error.
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) is `base_delay * 2^k`, capped
    /// at `max_delay`, plus jitter.
    pub base_delay: Duration,
    /// Upper bound on the exponential backoff (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the jitter sequence. Same seed → same jitter schedule:
    /// retry timing is reproducible like everything else in the pipeline.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Four retries, 10 ms base, 500 ms cap: a ~1 s worst case per read.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries without sleeping (tests, in-memory readers).
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// Is this error kind worth retrying? Only interruptions that can
    /// resolve by themselves qualify; everything else is fatal. Note
    /// that disk-fatal conditions (`ENOSPC`/`EROFS`, see
    /// [`crate::io::is_disk_fatal`]) are never transient: retrying a
    /// full or read-only disk only delays the inevitable.
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }

    /// Is this error kind worth retrying *for a connection attempt*? On
    /// top of [`is_transient`](RetryPolicy::is_transient), a refused or
    /// reset connection usually means the server is restarting or
    /// draining — exactly the window a capped backoff rides out.
    pub fn is_transient_connect(kind: io::ErrorKind) -> bool {
        RetryPolicy::is_transient(kind)
            || matches!(
                kind,
                io::ErrorKind::ConnectionRefused | io::ErrorKind::ConnectionReset
            )
    }

    /// Fresh jitter state for [`delay`](RetryPolicy::delay) sequences.
    pub fn jitter_state(&self) -> u64 {
        self.jitter_seed | 1 // xorshift state must be nonzero
    }

    /// Backoff before 0-based retry `attempt`, advancing `jitter_state`
    /// (seed it with [`jitter_state`](RetryPolicy::jitter_state)):
    /// exponential, capped, plus up to +50% deterministic jitter. Public
    /// so non-`Read` callers (the serve client's connect loop) can share
    /// the schedule.
    pub fn delay(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        self.backoff(attempt, jitter_state)
    }

    fn backoff(&self, attempt: u32, jitter_state: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        if exp.is_zero() {
            return Duration::ZERO;
        }
        // xorshift64*: tiny, seedable, good enough to decorrelate
        // concurrent loaders hammering the same mount.
        let mut x = *jitter_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *jitter_state = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Scale the top 32 random bits into [0, exp/2] without overflow.
        let half = u64::try_from(exp.as_nanos() / 2).unwrap_or(u64::MAX);
        let jitter_nanos =
            u64::try_from((u128::from(r >> 32) * u128::from(half)) >> 32).unwrap_or(u64::MAX);
        exp + Duration::from_nanos(jitter_nanos)
    }
}

/// A [`Read`] adapter that absorbs transient failures per
/// [`RetryPolicy`]. Wrap it in a `BufReader` for line-oriented loading.
#[derive(Debug)]
pub struct RetryReader<R> {
    inner: R,
    policy: RetryPolicy,
    jitter_state: u64,
    retries: u64,
    metrics: Option<Arc<SolverMetrics>>,
}

impl<R: Read> RetryReader<R> {
    /// Wrap `inner` with the given policy.
    pub fn new(inner: R, policy: RetryPolicy) -> Self {
        let jitter_state = policy.jitter_seed | 1; // xorshift state must be nonzero
        RetryReader {
            inner,
            policy,
            jitter_state,
            retries: 0,
            metrics: None,
        }
    }

    /// Also count retries into `metrics` ([`SolverMetrics::io_retries`]).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<SolverMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Transient errors absorbed so far (across all reads).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Unwrap the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for RetryReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut attempt: u32 = 0;
        loop {
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(e)
                    if RetryPolicy::is_transient(e.kind()) && attempt < self.policy.max_retries =>
                {
                    let delay = self.policy.backoff(attempt, &mut self.jitter_state);
                    attempt += 1;
                    self.retries += 1;
                    if let Some(m) = &self.metrics {
                        SolverMetrics::incr(&m.io_retries);
                    }
                    tracing::debug!(
                        "transient read error ({e}); retry {attempt}/{} after {delay:?}",
                        self.policy.max_retries
                    );
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
                Err(e) => {
                    if RetryPolicy::is_transient(e.kind()) {
                        tracing::warn!(
                            "transient read error persisted through {} retries: {e}",
                            self.policy.max_retries
                        );
                    }
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    /// A reader that fails with `kind` the first `failures` reads (or on
    /// a schedule), then serves `data`.
    struct Flaky {
        data: io::Cursor<Vec<u8>>,
        failures_left: usize,
        kind: io::ErrorKind,
        /// When true, a failure precedes *every* successful read while
        /// failures remain (interleaved), instead of only the first read.
        interleave: bool,
        served: usize,
    }

    impl Flaky {
        fn new(data: &[u8], failures: usize, kind: io::ErrorKind) -> Self {
            Flaky {
                data: io::Cursor::new(data.to_vec()),
                failures_left: failures,
                kind,
                interleave: false,
                served: 0,
            }
        }
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let should_fail =
                self.failures_left > 0 && (!self.interleave || self.served.is_multiple_of(2));
            if should_fail {
                self.failures_left -= 1;
                self.served += 1;
                return Err(io::Error::new(self.kind, "injected"));
            }
            self.served += 1;
            // Serve one byte at a time to force many read calls.
            let mut one = [0u8; 1];
            let n = self.data.read(&mut one)?;
            if n > 0 {
                buf[0] = one[0];
            }
            Ok(n)
        }
    }

    #[test]
    fn absorbs_transient_failures_and_counts_them() {
        let flaky = Flaky::new(b"hello world", 3, io::ErrorKind::Interrupted);
        let mut r = RetryReader::new(flaky, RetryPolicy::immediate(4));
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello world");
        assert_eq!(r.retries(), 3);
    }

    #[test]
    fn interleaved_failures_reset_the_attempt_budget_per_read() {
        let mut flaky = Flaky::new(b"abc", 3, io::ErrorKind::TimedOut);
        flaky.interleave = true;
        // Budget of 1 retry per read is enough when failures alternate
        // with successes — the budget is per read call, not global.
        let mut r = RetryReader::new(flaky, RetryPolicy::immediate(1));
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "abc");
        assert_eq!(r.retries(), 3);
    }

    #[test]
    fn persistent_transient_failure_surfaces_after_budget() {
        let flaky = Flaky::new(b"data", 100, io::ErrorKind::WouldBlock);
        let mut r = RetryReader::new(flaky, RetryPolicy::immediate(2));
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(r.retries(), 2, "exactly the budget was spent");
    }

    #[test]
    fn fatal_errors_propagate_immediately() {
        let flaky = Flaky::new(b"data", 1, io::ErrorKind::PermissionDenied);
        let mut r = RetryReader::new(flaky, RetryPolicy::immediate(5));
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(r.retries(), 0, "no retry wasted on a fatal error");
    }

    #[test]
    fn retries_feed_the_metrics_collector() {
        let metrics = Arc::new(SolverMetrics::new());
        let flaky = Flaky::new(b"x", 2, io::ErrorKind::Interrupted);
        let mut r =
            RetryReader::new(flaky, RetryPolicy::immediate(3)).with_metrics(Arc::clone(&metrics));
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(metrics.snapshot().io_retries, 2);
    }

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter_seed: 42,
        };
        let mut s1 = policy.jitter_seed | 1;
        let mut s2 = policy.jitter_seed | 1;
        for attempt in 0..10 {
            let d1 = policy.backoff(attempt, &mut s1);
            let d2 = policy.backoff(attempt, &mut s2);
            assert_eq!(d1, d2, "same seed, same schedule");
            let exp = Duration::from_millis(10)
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(Duration::from_millis(80));
            assert!(d1 >= exp, "jitter only adds: {d1:?} < {exp:?}");
            assert!(
                d1 <= exp + exp / 2 + Duration::from_nanos(1),
                "jitter capped at +50%"
            );
        }
        // Zero-delay policies never sleep.
        let mut s = 1;
        assert_eq!(RetryPolicy::immediate(3).backoff(5, &mut s), Duration::ZERO);
    }
}
