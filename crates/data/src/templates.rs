//! Sentence templates for synthetic review text.
//!
//! The generator needs review text whose pairwise ROUGE scores behave
//! like real reviews: two reviews discussing the same aspect with any
//! polarity share vocabulary (aspect terms, common phrasing), while
//! reviews about different aspects share only stop-word-level overlap.
//! Adjectives are drawn from the same word lists as the sentiment lexicon
//! in `comparesets-text`, so the end-to-end extraction example can recover
//! the annotations from the generated text.

use crate::model::Polarity;

/// Positive adjectives (a subset of the lexicon's positive words).
pub const POSITIVE_ADJECTIVES: &[&str] = &[
    "great",
    "excellent",
    "amazing",
    "fantastic",
    "solid",
    "reliable",
    "impressive",
    "superb",
    "wonderful",
    "outstanding",
    "perfect",
    "nice",
];

/// Negative adjectives (a subset of the lexicon's negative words).
pub const NEGATIVE_ADJECTIVES: &[&str] = &[
    "bad",
    "poor",
    "terrible",
    "disappointing",
    "flimsy",
    "awful",
    "horrible",
    "mediocre",
    "frustrating",
    "weak",
    "defective",
    "unreliable",
];

/// Neutral descriptors for bare mentions.
pub const NEUTRAL_PHRASES: &[&str] = &[
    "is about what you would expect",
    "is there as described",
    "matches the listing",
    "is standard for this kind of product",
    "is unremarkable either way",
    "works as stated in the manual",
];

/// Sentence templates; `{aspect}` and `{adj}` are substituted. Each
/// template mentions the aspect term twice: reviews discussing the same
/// aspect then share several unigrams and the "the {aspect}" bigram, so
/// ROUGE between reviews genuinely tracks aspect overlap — the property
/// the paper's evaluation metric relies on (§4.1.3).
pub const OPINION_TEMPLATES: &[&str] = &[
    "the {aspect} is {adj}, a {aspect} like this decides the purchase",
    "i found the {aspect} to be {adj} and the {aspect} held up in daily use",
    "its {aspect} turned out {adj}, the {aspect} is what you notice first",
    "overall the {aspect} seems {adj}, judge the {aspect} for yourself",
    "honestly the {aspect} was {adj} for the price, few offer such a {aspect}",
    "{adj} {aspect} compared to what i had before, that {aspect} sold me",
];

/// Templates for neutral mentions; `{aspect}` and `{phrase}` substituted.
pub const NEUTRAL_TEMPLATES: &[&str] = &[
    "the {aspect} {phrase}, no surprises in the {aspect} department",
    "as for the {aspect}, it {phrase}, a {aspect} is a {aspect}",
];

/// Opening phrases that add realistic shared filler.
pub const OPENERS: &[&str] = &[
    "bought this last month",
    "arrived quickly and well packaged",
    "i use this every day",
    "got this as a gift",
    "after a few weeks of use",
    "ordered this to replace an older one",
];

/// Closing phrases keyed by overall verdict (true = positive lean).
pub const POSITIVE_CLOSERS: &[&str] = &[
    "would recommend to anyone",
    "definitely worth the money",
    "very happy with this purchase",
    "will buy again",
];

/// Closing phrases for negative-leaning reviews.
pub const NEGATIVE_CLOSERS: &[&str] = &[
    "would not recommend",
    "save your money",
    "thinking about a return",
    "expected better",
];

/// Render one opinion sentence for `(aspect, polarity)` using the template
/// and adjective chosen by the provided indices (callers pass RNG draws so
/// this function stays deterministic and trivially testable).
pub fn render_sentence(
    aspect: &str,
    polarity: Polarity,
    template_idx: usize,
    word_idx: usize,
) -> String {
    match polarity {
        Polarity::Positive => {
            let t = OPINION_TEMPLATES[template_idx % OPINION_TEMPLATES.len()];
            let adj = POSITIVE_ADJECTIVES[word_idx % POSITIVE_ADJECTIVES.len()];
            t.replace("{aspect}", aspect).replace("{adj}", adj)
        }
        Polarity::Negative => {
            let t = OPINION_TEMPLATES[template_idx % OPINION_TEMPLATES.len()];
            let adj = NEGATIVE_ADJECTIVES[word_idx % NEGATIVE_ADJECTIVES.len()];
            t.replace("{aspect}", aspect).replace("{adj}", adj)
        }
        Polarity::Neutral => {
            let t = NEUTRAL_TEMPLATES[template_idx % NEUTRAL_TEMPLATES.len()];
            let phrase = NEUTRAL_PHRASES[word_idx % NEUTRAL_PHRASES.len()];
            t.replace("{aspect}", aspect).replace("{phrase}", phrase)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_sentence_contains_aspect_and_adjective() {
        let s = render_sentence("battery", Polarity::Positive, 0, 0);
        assert!(s.contains("battery"));
        assert!(s.contains("great"));
    }

    #[test]
    fn negative_sentence_contains_negative_adjective() {
        let s = render_sentence("lens", Polarity::Negative, 1, 2);
        assert!(s.contains("lens"));
        assert!(s.contains(NEGATIVE_ADJECTIVES[2]));
    }

    #[test]
    fn neutral_sentence_has_no_sentiment_adjective() {
        let s = render_sentence("strap", Polarity::Neutral, 0, 0);
        assert!(s.contains("strap"));
        for adj in POSITIVE_ADJECTIVES.iter().chain(NEGATIVE_ADJECTIVES) {
            assert!(!s.contains(adj), "{s} contains {adj}");
        }
    }

    #[test]
    fn indices_wrap_safely() {
        let s = render_sentence("zip", Polarity::Positive, 1000, 1000);
        assert!(s.contains("zip"));
    }

    #[test]
    fn adjectives_are_in_text_lexicon() {
        use comparesets_text::{Lexicon, Sentiment};
        let lex = Lexicon::builtin();
        for w in POSITIVE_ADJECTIVES {
            assert_eq!(lex.polarity(w), Some(Sentiment::Positive), "{w}");
        }
        for w in NEGATIVE_ADJECTIVES {
            assert_eq!(lex.polarity(w), Some(Sentiment::Negative), "{w}");
        }
    }
}
