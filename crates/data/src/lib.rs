//! Data substrate for the CompaReSetS reproduction.
//!
//! The paper evaluates on the Amazon Product Review Dataset (McAuley et
//! al.), three categories — Cell Phones & Accessories, Toys & Games,
//! Clothing — with "also bought" metadata as the source of comparison
//! lists and externally produced aspect-sentiment annotations (§4.1.1,
//! Table 2). That corpus is not redistributable, so this crate provides:
//!
//! * [`model`] — the corpus data model: aspects, polarities, annotated
//!   reviews, products with "also bought" lists, datasets, and the
//!   per-target [`model::ComparisonInstance`] the solvers consume.
//! * [`synth`] — a seeded synthetic generator whose corpora mirror the
//!   *structure* of Table 2 (review counts, comparison-list lengths,
//!   aspect sparsity, opinion skew) and whose review text is generated
//!   from shared aspect/sentiment templates so that ROUGE between reviews
//!   rises with true aspect overlap — the property the paper's evaluation
//!   metric relies on.
//! * [`templates`] — the sentence templates used by the generator.
//! * [`stats`] — dataset statistics (regenerates Table 2's rows).
//! * [`io`] — JSON (de)serialisation for reproducible corpora on disk.
//! * [`wal`] — the durable streaming store: a CRC-framed write-ahead
//!   log of review events plus atomic snapshots, with torn-tail
//!   recovery and log compaction (ARCHITECTURE.md §11).
//! * [`fault`] — the deterministic fault-injection plane and seeded
//!   chaos-schedule harness that exercise the store's crash-safety
//!   claims (ARCHITECTURE.md §12).

#![warn(missing_docs)]

pub mod amazon;
pub mod fault;
pub mod io;
pub mod model;
pub mod retry;
pub mod stats;
pub mod synth;
pub mod templates;
pub mod wal;

pub use amazon::{AmazonError, AmazonLoader, SkippedLines};
pub use fault::{run_fault_schedule, FaultAction, FaultPlane, FaultProfile, IoOp, ScheduleOutcome};
pub use model::{
    AspectId, AspectMention, ComparisonInstance, Dataset, Polarity, Product, ProductId, Review,
    ReviewId,
};
pub use retry::{RetryPolicy, RetryReader};
pub use stats::DatasetStats;
pub use synth::{CategoryPreset, SynthConfig};
pub use wal::{
    CorpusSnapshot, CorpusStore, EventKind, Recovery, ReviewEvent, WalError, WalScan,
    SNAPSHOT_PREV_FILE, SNAPSHOT_SCHEMA,
};
