//! Durable streaming corpus store: write-ahead log + snapshots.
//!
//! A corpus that mutates under a serving daemon needs two guarantees
//! (ARCHITECTURE.md §11): an acknowledged review event survives a crash,
//! and recovery reconstructs *exactly* the acknowledged prefix — no
//! more, no less. This module provides both with the classic WAL +
//! snapshot pair:
//!
//! * **WAL** (`wal.log`) — an append-only log of [`ReviewEvent`]s. Each
//!   record is length-prefixed and carries a CRC32 of its payload:
//!
//!   ```text
//!   +--------------+---------------+------------------------+
//!   | len: u32 LE  | crc32: u32 LE | payload: len JSON bytes|
//!   +--------------+---------------+------------------------+
//!   ```
//!
//!   Appends are batched: one `fsync` per acknowledged batch, however
//!   many records it carries (*fsync-on-ack*). Recovery scans from the
//!   front and stops at the first record that is short, oversized, fails
//!   its CRC, or does not decode — a *torn tail* from a crash mid-write —
//!   and truncates the file there instead of failing. Everything before
//!   the tear was acknowledged and is kept; everything after was never
//!   acknowledged (the fsync that would have acked it never returned).
//!
//! * **Snapshots** (`snapshot.json`) — the full dataset under a
//!   `corpus-snapshot/v1` header (the style of the eval suite's
//!   `suite-checkpoint/v1`), written atomically via
//!   [`write_atomic`](crate::io::write_atomic). Snapshots are retained
//!   two generations deep (`snapshot.json` + `snapshot.prev.json`): a
//!   torn primary falls back one generation. Once a snapshot lands the
//!   WAL is *compacted* down to the records the fallback generation
//!   still needs. A crash between snapshot write and compaction is
//!   benign — replay skips records with `seq <= snapshot.seq`.
//!
//! [`CorpusStore`] ties the two together for the serving daemon;
//! [`recover`] is the read-only flavour behind `comparesets recover`.

use crate::fault::{disk_full_error, injected_error, FaultAction, FaultPlane, IoOp};
use crate::io::{is_disk_fatal, write_atomic_with};
use crate::model::{AspectMention, Dataset, ProductId, Review, ReviewId};
use comparesets_obs::SolverMetrics;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema tag embedded in every corpus snapshot.
pub const SNAPSHOT_SCHEMA: &str = "corpus-snapshot/v1";

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Previous-generation snapshot kept as a recovery fallback: when
/// [`SNAPSHOT_FILE`] is corrupt or truncated (a fault the chaos plane
/// injects and real disks deliver), recovery falls back to this file and
/// replays the longer WAL suffix it still covers.
pub const SNAPSHOT_PREV_FILE: &str = "snapshot.prev.json";

/// Hard cap on one WAL record's payload, in bytes (4 MiB — matches the
/// serve protocol's frame cap). A corrupt length prefix can therefore
/// never demand an unbounded allocation; recovery treats an oversized
/// length as a torn tail.
pub const MAX_RECORD_LEN: u32 = 4 * 1024 * 1024;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected — the ubiquitous zlib/ethernet polynomial)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum of `bytes` (IEEE polynomial, as in zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// What a [`ReviewEvent`] does to its corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Append a brand-new review to a product.
    Add,
    /// Replace an existing review's rating, text, and mentions.
    Edit,
    /// Unlist a review from its product (the `Review` record stays in
    /// the dataset's review table as a tombstone, so review ids remain
    /// stable and replay stays deterministic).
    Delete,
}

/// One corpus mutation, as logged and replayed. Flat by design — the
/// vendored `serde` derives named-field structs and fieldless enums
/// only — so `Edit`/`Delete` simply leave the fields they do not use at
/// their defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewEvent {
    /// Strictly increasing per-store sequence number (1-based); the
    /// snapshot/compaction handshake keys on it.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
    /// The product the event targets.
    pub product: ProductId,
    /// The review the event targets. For `Add` this is assigned at
    /// append time as `dataset.reviews.len()`, making replay reproduce
    /// identical ids.
    pub review: ReviewId,
    /// Reviewer index (`Add` only; assigned at append time).
    #[serde(default)]
    pub reviewer: u32,
    /// Star rating 1–5 (`Add`/`Edit`).
    #[serde(default)]
    pub rating: u8,
    /// Review body (`Add`/`Edit`).
    #[serde(default)]
    pub text: String,
    /// Aspect-opinion annotations (`Add`/`Edit`).
    #[serde(default)]
    pub mentions: Vec<AspectMention>,
}

impl Dataset {
    /// Check that `ev` can apply to this dataset *right now*. The serve
    /// path validates before the WAL append, so the log only ever holds
    /// applicable events and replay is infallible in practice.
    ///
    /// # Errors
    /// A human-readable reason the event does not apply.
    pub fn check_event(&self, ev: &ReviewEvent) -> Result<(), String> {
        let np = self.products.len() as u32;
        if ev.product.0 >= np {
            return Err(format!(
                "product {:?} out of range ({} products)",
                ev.product, np
            ));
        }
        match ev.kind {
            EventKind::Add => {
                if ev.review.0 as usize != self.reviews.len() {
                    return Err(format!(
                        "add must assign the next review id {} (got {:?})",
                        self.reviews.len(),
                        ev.review
                    ));
                }
                self.check_annotations(ev)
            }
            EventKind::Edit => {
                self.check_listed(ev)?;
                self.check_annotations(ev)
            }
            EventKind::Delete => self.check_listed(ev),
        }
    }

    fn check_annotations(&self, ev: &ReviewEvent) -> Result<(), String> {
        if !(1..=5).contains(&ev.rating) {
            return Err(format!("rating {} outside 1..=5", ev.rating));
        }
        let z = self.aspects.len() as u32;
        for m in &ev.mentions {
            if m.aspect.0 >= z {
                return Err(format!("aspect {:?} out of range ({z} aspects)", m.aspect));
            }
        }
        Ok(())
    }

    fn check_listed(&self, ev: &ReviewEvent) -> Result<(), String> {
        if ev.review.0 as usize >= self.reviews.len() {
            return Err(format!(
                "review {:?} out of range ({} reviews)",
                ev.review,
                self.reviews.len()
            ));
        }
        if self.reviews[ev.review.0 as usize].product != ev.product {
            return Err(format!(
                "review {:?} belongs to {:?}, not {:?}",
                ev.review, self.reviews[ev.review.0 as usize].product, ev.product
            ));
        }
        if !self.products[ev.product.0 as usize]
            .reviews
            .contains(&ev.review)
        {
            return Err(format!(
                "review {:?} already deleted from product {:?}",
                ev.review, ev.product
            ));
        }
        Ok(())
    }

    /// Apply one event ([`check_event`](Dataset::check_event) first).
    /// Deletes are tombstones: the review id disappears from the
    /// product's listing but the `Review` record stays in the table, so
    /// every other id — and therefore replay — is unaffected.
    ///
    /// # Errors
    /// As for [`check_event`](Dataset::check_event); on error the
    /// dataset is unchanged.
    pub fn apply_event(&mut self, ev: &ReviewEvent) -> Result<(), String> {
        self.check_event(ev)?;
        match ev.kind {
            EventKind::Add => {
                self.reviews.push(Review {
                    id: ev.review,
                    product: ev.product,
                    reviewer: ev.reviewer,
                    rating: ev.rating,
                    text: ev.text.clone(),
                    mentions: ev.mentions.clone(),
                });
                self.products[ev.product.0 as usize].reviews.push(ev.review);
                self.num_reviewers = self.num_reviewers.max(ev.reviewer + 1);
            }
            EventKind::Edit => {
                let r = &mut self.reviews[ev.review.0 as usize];
                r.rating = ev.rating;
                r.text = ev.text.clone();
                r.mentions = ev.mentions.clone();
            }
            EventKind::Delete => {
                self.products[ev.product.0 as usize]
                    .reviews
                    .retain(|r| *r != ev.review);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Failures from the durable store. WAL *corruption* is deliberately
/// absent: a torn or corrupt tail truncates during recovery instead of
/// erroring (losing only never-acknowledged records).
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Fatal disk condition (`ENOSPC`/`EROFS`): retrying cannot help,
    /// the CLI surfaces it as its own exit code, and the serve protocol
    /// answers it with the `disk` error code.
    Disk(std::io::Error),
    /// The snapshot file exists but is unusable (bad schema tag,
    /// malformed JSON, or an inconsistent dataset).
    Corrupt(String),
    /// A replayed event did not apply — the log and snapshot disagree
    /// (e.g. hand-edited files).
    Apply(String),
    /// Recovery was asked of a directory with no snapshot and no seed
    /// corpus to start from.
    NothingToRecover(PathBuf),
    /// A failed append could not be rolled back to a clean record
    /// boundary, so the store refuses further writes: continuing could
    /// log duplicate sequence numbers. Reopen (and recover) to resume.
    Poisoned(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "store io error: {e}"),
            WalError::Disk(e) => write!(f, "disk fatal: {e} (not retried)"),
            WalError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            WalError::Apply(why) => write!(f, "replayed event does not apply: {why}"),
            WalError::NothingToRecover(dir) => {
                write!(f, "no snapshot in {} and no seed corpus", dir.display())
            }
            WalError::Poisoned(why) => {
                write!(f, "store poisoned (reopen to recover): {why}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        if is_disk_fatal(&e) {
            WalError::Disk(e)
        } else {
            WalError::Io(e)
        }
    }
}

// ---------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------

/// Frame one event as a WAL record.
fn encode_record(ev: &ReviewEvent) -> Result<Vec<u8>, WalError> {
    let payload =
        serde_json::to_string(ev).map_err(|e| WalError::Corrupt(format!("encoding event: {e}")))?;
    let payload = payload.as_bytes();
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_RECORD_LEN)
        .ok_or_else(|| WalError::Corrupt(format!("event of {} bytes", payload.len())))?;
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    Ok(rec)
}

/// What scanning a WAL file yields.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every decodable record, in log order.
    pub events: Vec<ReviewEvent>,
    /// Byte length of the valid prefix (`events` live in `[0, valid_len)`).
    pub valid_len: u64,
    /// Bytes past the valid prefix — the torn tail a crash left behind.
    pub truncated_bytes: u64,
}

/// Scan a WAL file, stopping at the first record that is short,
/// oversized, CRC-mismatched, or undecodable. Never fails on content: a
/// torn tail is reported, not an error. A missing file scans as empty.
///
/// # Errors
/// Filesystem errors only.
pub fn scan_wal(path: &Path) -> Result<WalScan, WalError> {
    scan_wal_with(path, None)
}

/// [`scan_wal`] under an optional [`FaultPlane`]: the read itself can be
/// failed, delayed, or handed back with one bit flipped
/// ([`IoOp::WalRead`]). A flipped bit lands wherever the schedule says,
/// fails that record's CRC, and truncates the scan there — exactly what
/// a real media-corrupted read would do.
///
/// # Errors
/// Filesystem errors and injected read failures.
pub fn scan_wal_with(path: &Path, plane: Option<&FaultPlane>) -> Result<WalScan, WalError> {
    let mut buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(WalError::Io(e)),
    };
    if let Some(p) = plane {
        match p.next(IoOp::WalRead) {
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Fail => return Err(injected_error().into()),
            FaultAction::BitFlip(at) if !buf.is_empty() => {
                let idx = (at % buf.len() as u64) as usize;
                buf[idx] ^= 1 << (at % 8);
            }
            _ => {}
        }
    }
    let mut events = Vec::new();
    let mut off = 0usize;
    while buf.len() - off >= 8 {
        let len = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
        if len > MAX_RECORD_LEN {
            break;
        }
        let crc = u32::from_le_bytes([buf[off + 4], buf[off + 5], buf[off + 6], buf[off + 7]]);
        let Some(end) = (off + 8)
            .checked_add(len as usize)
            .filter(|e| *e <= buf.len())
        else {
            break;
        };
        let payload = &buf[off + 8..end];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(ev) = serde_json::from_str::<ReviewEvent>(text) else {
            break;
        };
        events.push(ev);
        off = end;
    }
    Ok(WalScan {
        events,
        valid_len: off as u64,
        truncated_bytes: (buf.len() - off) as u64,
    })
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A corpus snapshot on disk: the full dataset plus the sequence number
/// it covers, under the [`SNAPSHOT_SCHEMA`] tag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSnapshot {
    /// Always [`SNAPSHOT_SCHEMA`]; checked on load.
    pub schema: String,
    /// Every event with `seq <=` this is folded into `dataset`.
    pub seq: u64,
    /// The folded corpus.
    pub dataset: Dataset,
}

fn load_snapshot(path: &Path) -> Result<CorpusSnapshot, WalError> {
    let json = std::fs::read_to_string(path)?;
    let snap: CorpusSnapshot = serde_json::from_str(&json)
        .map_err(|e| WalError::Corrupt(format!("{}: {e}", path.display())))?;
    if snap.schema != SNAPSHOT_SCHEMA {
        return Err(WalError::Corrupt(format!(
            "{}: schema {:?}, expected {SNAPSHOT_SCHEMA:?}",
            path.display(),
            snap.schema
        )));
    }
    let problems = snap.dataset.validate();
    if let Some(first) = problems.first() {
        return Err(WalError::Corrupt(format!(
            "{}: invalid dataset ({} problems, first: {first})",
            path.display(),
            problems.len()
        )));
    }
    Ok(snap)
}

// ---------------------------------------------------------------------
// Recovery + store
// ---------------------------------------------------------------------

/// What recovery reconstructed and how.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The corpus after snapshot + WAL tail.
    pub dataset: Dataset,
    /// Sequence number the snapshot covered (0 = seeded fresh).
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// Torn-tail bytes dropped from the end of the WAL.
    pub truncated_bytes: u64,
    /// Highest sequence number in the recovered state.
    pub last_seq: u64,
    /// Byte length of the WAL's valid prefix at scan time (what a
    /// reopening store truncates the file to).
    pub wal_valid_len: u64,
    /// Human-readable descriptions of every fault recovery absorbed —
    /// a torn WAL tail, an unusable primary snapshot — so `comparesets
    /// recover` can name each one instead of silently healing.
    pub faults: Vec<String>,
    /// Recovery could not use [`SNAPSHOT_FILE`] and fell back to
    /// [`SNAPSHOT_PREV_FILE`]; the reopening store re-seals a fresh
    /// primary immediately.
    pub snapshot_fallback: bool,
}

/// Read-only recovery: fold the snapshot and the WAL tail into a
/// dataset without touching either file. Behind `comparesets recover`.
///
/// When the primary snapshot is corrupt or truncated, recovery falls
/// back to the previous-generation snapshot ([`SNAPSHOT_PREV_FILE`]) —
/// compaction keeps every WAL record the fallback still needs — and
/// records both faults in [`Recovery::faults`].
///
/// # Errors
/// [`WalError::NothingToRecover`] when the directory has no snapshot;
/// [`WalError::Corrupt`] when every snapshot generation is unusable;
/// filesystem failures as usual.
pub fn recover(dir: &Path, metrics: Option<&SolverMetrics>) -> Result<Recovery, WalError> {
    recover_with(dir, metrics, None)
}

/// [`recover`] under an optional [`FaultPlane`] (read faults on the WAL
/// scan).
///
/// # Errors
/// As for [`recover`], plus injected read failures.
pub fn recover_with(
    dir: &Path,
    metrics: Option<&SolverMetrics>,
    plane: Option<&FaultPlane>,
) -> Result<Recovery, WalError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    let prev_path = dir.join(SNAPSHOT_PREV_FILE);
    let mut faults: Vec<String> = Vec::new();
    let primary = if snap_path.exists() {
        match load_snapshot(&snap_path) {
            Ok(snap) => Some(snap),
            Err(WalError::Corrupt(why)) => {
                faults.push(format!("primary snapshot unusable: {why}"));
                None
            }
            Err(e) => return Err(e),
        }
    } else if prev_path.exists() {
        faults.push(format!(
            "primary snapshot missing: {} does not exist",
            snap_path.display()
        ));
        None
    } else {
        return Err(WalError::NothingToRecover(dir.to_path_buf()));
    };
    let snapshot_fallback = primary.is_none();
    let snap = match primary {
        Some(snap) => snap,
        None => match load_snapshot(&prev_path) {
            Ok(snap) => {
                faults.push(format!(
                    "fell back to previous snapshot {} (seq {})",
                    prev_path.display(),
                    snap.seq
                ));
                snap
            }
            Err(WalError::Corrupt(why)) => {
                return Err(WalError::Corrupt(format!(
                    "{}; previous snapshot also unusable: {why}",
                    faults.join("; ")
                )))
            }
            Err(e) if !prev_path.exists() => {
                let _ = e;
                return Err(WalError::Corrupt(format!(
                    "{}; and no previous snapshot to fall back to",
                    faults.join("; ")
                )));
            }
            Err(e) => return Err(e),
        },
    };
    let scan = scan_wal_with(&dir.join(WAL_FILE), plane)?;
    if scan.truncated_bytes > 0 {
        faults.push(format!(
            "wal tail torn: dropped {} byte(s) past the last whole record",
            scan.truncated_bytes
        ));
    }
    let mut dataset = snap.dataset;
    let mut last_seq = snap.seq;
    let mut replayed = 0u64;
    for ev in &scan.events {
        if ev.seq <= snap.seq {
            continue; // already folded into the snapshot
        }
        dataset.apply_event(ev).map_err(WalError::Apply)?;
        last_seq = ev.seq;
        replayed += 1;
    }
    if let Some(m) = metrics {
        SolverMetrics::add(&m.recovery_replayed_records, replayed);
    }
    Ok(Recovery {
        dataset,
        snapshot_seq: snap.seq,
        replayed,
        truncated_bytes: scan.truncated_bytes,
        last_seq,
        wal_valid_len: scan.valid_len,
        faults,
        snapshot_fallback,
    })
}

/// The durable side of one corpus shard: an open WAL append handle plus
/// the snapshot/compaction bookkeeping. The in-memory dataset lives with
/// the caller (the serving shard); the store only guarantees that what
/// was acknowledged can be rebuilt.
pub struct CorpusStore {
    dir: PathBuf,
    wal: File,
    next_seq: u64,
    records_since_snapshot: u64,
    /// Seq the current primary snapshot covers. At the next snapshot
    /// the primary is demoted to the previous generation, so this value
    /// becomes the compaction bound: every record past it is kept.
    last_snapshot_seq: u64,
    snapshot_every: u64,
    metrics: Option<Arc<SolverMetrics>>,
    plane: Option<Arc<FaultPlane>>,
    poisoned: Option<String>,
}

impl CorpusStore {
    /// Open (or create) the store in `dir` and recover its corpus.
    ///
    /// Existing durable state wins: when `dir` holds a snapshot, `seed`
    /// is ignored and the corpus is snapshot + WAL tail (with any torn
    /// tail truncated so new appends start at a clean record boundary).
    /// Otherwise `seed` becomes the initial corpus and is written as the
    /// first snapshot immediately — from then on the directory is
    /// self-contained.
    ///
    /// `snapshot_every` auto-snapshots (and compacts) after that many
    /// appended records; 0 disables automatic snapshots.
    ///
    /// # Errors
    /// [`WalError::NothingToRecover`] when `dir` has no snapshot and no
    /// `seed` was given; snapshot corruption and filesystem failures.
    pub fn open(
        dir: &Path,
        seed: Option<&Dataset>,
        snapshot_every: u64,
        metrics: Option<Arc<SolverMetrics>>,
    ) -> Result<(CorpusStore, Recovery), WalError> {
        CorpusStore::open_with_plane(dir, seed, snapshot_every, metrics, None)
    }

    /// [`open`](CorpusStore::open) with a [`FaultPlane`] threaded
    /// through every subsequent durability-critical I/O (appends,
    /// fsyncs, snapshot writes, compaction) *and* through the recovery
    /// scan itself. Production paths pass `None` and pay nothing.
    ///
    /// # Errors
    /// As for [`open`](CorpusStore::open), plus injected faults.
    pub fn open_with_plane(
        dir: &Path,
        seed: Option<&Dataset>,
        snapshot_every: u64,
        metrics: Option<Arc<SolverMetrics>>,
        plane: Option<Arc<FaultPlane>>,
    ) -> Result<(CorpusStore, Recovery), WalError> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        let fresh = !snap_path.exists() && !dir.join(SNAPSHOT_PREV_FILE).exists();
        let recovery = if fresh {
            let seed = seed.ok_or_else(|| WalError::NothingToRecover(dir.to_path_buf()))?;
            Recovery {
                dataset: seed.clone(),
                snapshot_seq: 0,
                replayed: 0,
                truncated_bytes: 0,
                last_seq: 0,
                wal_valid_len: 0,
                faults: Vec::new(),
                snapshot_fallback: false,
            }
        } else {
            recover_with(dir, metrics.as_deref(), plane.as_deref())?
        };
        if recovery.truncated_bytes > 0 {
            // Drop the torn tail so the next append starts a clean record.
            let f = OpenOptions::new().write(true).open(&wal_path)?;
            f.set_len(recovery.wal_valid_len)?;
            f.sync_all()?;
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let mut store = CorpusStore {
            dir: dir.to_path_buf(),
            wal,
            next_seq: recovery.last_seq + 1,
            records_since_snapshot: recovery.replayed,
            last_snapshot_seq: recovery.snapshot_seq,
            snapshot_every,
            metrics,
            plane,
            poisoned: None,
        };
        if fresh || recovery.snapshot_fallback {
            // Seal the seed so recovery never needs it again — or, after
            // a fallback, re-seal a healthy primary snapshot immediately.
            store.snapshot(&recovery.dataset)?;
        }
        Ok((store, recovery))
    }

    /// The sequence number the next appended event must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Install (or remove) a fault-injection plane on a live store.
    /// The chaos harness opens cleanly, then arms the plane, so setup
    /// I/O never consumes schedule draws.
    pub fn set_fault_plane(&mut self, plane: Option<Arc<FaultPlane>>) {
        self.plane = plane;
    }

    /// Why the store refuses writes, if a failed append could not be
    /// rolled back (see [`WalError::Poisoned`]).
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Records appended since the last snapshot — the WAL lag the serve
    /// `health` op reports (how much replay a crash right now would cost).
    pub fn wal_lag(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Force an fsync of the WAL file (drain calls this before the
    /// final snapshot; appends already fsync per acknowledged batch, so
    /// this is belt-and-braces for the shutdown path).
    ///
    /// # Errors
    /// Filesystem failures.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.wal.sync_data()?;
        Ok(())
    }

    /// Append a batch of events durably: every record is written, then
    /// **one** `fsync` covers the batch (fsync-on-ack). Only after this
    /// returns `Ok` may the caller acknowledge the batch.
    ///
    /// Events must carry consecutive sequence numbers starting at
    /// [`next_seq`](CorpusStore::next_seq) — the caller stamps them while
    /// holding its shard lock, which is what makes the log total-ordered.
    ///
    /// # Errors
    /// Encoding and filesystem failures; on error nothing was
    /// acknowledged and the next recovery truncates any partial write.
    pub fn append(&mut self, events: &[ReviewEvent]) -> Result<(), WalError> {
        if let Some(why) = &self.poisoned {
            return Err(WalError::Poisoned(why.clone()));
        }
        let mut buf = Vec::new();
        for (k, ev) in events.iter().enumerate() {
            debug_assert_eq!(ev.seq, self.next_seq + k as u64, "non-sequential WAL batch");
            buf.extend_from_slice(&encode_record(ev)?);
        }
        let start = self.wal.metadata()?.len();
        if let Err(e) = self.write_and_sync(&buf) {
            // Roll the log back to the pre-append boundary so the failed
            // batch's sequence numbers can be reused without ever leaving
            // two records with the same seq on disk. If even that fails,
            // poison the store: only a reopen (which truncates the torn
            // region through recovery) can make writes safe again.
            if let Err(rb) = self.rollback_to(start) {
                self.poisoned = Some(format!("append failed ({e}); rollback failed ({rb})"));
            }
            return Err(e);
        }
        self.next_seq += events.len() as u64;
        self.records_since_snapshot += events.len() as u64;
        if let Some(m) = &self.metrics {
            SolverMetrics::add(&m.wal_appends, events.len() as u64);
            SolverMetrics::incr(&m.wal_fsyncs);
        }
        Ok(())
    }

    /// Draw the plane's verdict for `op` (Pass when no plane is armed),
    /// counting injections into the metrics collector.
    fn consult(&self, op: IoOp) -> FaultAction {
        let Some(p) = &self.plane else {
            return FaultAction::Pass;
        };
        let action = p.next(op);
        if action != FaultAction::Pass {
            if let Some(m) = &self.metrics {
                SolverMetrics::incr(&m.faults_injected);
            }
        }
        action
    }

    /// The faultable write+fsync at the heart of `append`.
    fn write_and_sync(&mut self, buf: &[u8]) -> Result<(), WalError> {
        let mut keep = buf.len();
        let mut verdict: Result<(), WalError> = Ok(());
        match self.consult(IoOp::WalWrite) {
            FaultAction::Pass | FaultAction::BitFlip(_) => {}
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Fail => return Err(injected_error().into()),
            FaultAction::DiskFull => return Err(disk_full_error().into()),
            FaultAction::ShortWrite(per_mille) => {
                // A torn write: a prefix lands on disk, then the device
                // gives out mid-record.
                keep = buf.len() * per_mille as usize / 1000;
                verdict = Err(injected_error().into());
            }
        }
        self.wal.write_all(&buf[..keep])?;
        verdict?;
        match self.consult(IoOp::WalFsync) {
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Fail => return Err(injected_error().into()),
            FaultAction::DiskFull => return Err(disk_full_error().into()),
            _ => {}
        }
        self.wal.sync_data()?;
        Ok(())
    }

    /// Truncate the WAL back to `len` and fsync, consulting the plane
    /// (a rollback can itself fail on a dying disk).
    fn rollback_to(&mut self, len: u64) -> Result<(), WalError> {
        match self.consult(IoOp::WalTruncate) {
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Fail => return Err(injected_error().into()),
            FaultAction::DiskFull => return Err(disk_full_error().into()),
            _ => {}
        }
        self.wal.set_len(len)?;
        self.wal.sync_data()?;
        Ok(())
    }

    /// Write a snapshot of `dataset` (which must reflect every appended
    /// event) and compact the WAL it covers. Called automatically every
    /// `snapshot_every` records via
    /// [`maybe_snapshot`](CorpusStore::maybe_snapshot).
    ///
    /// Snapshots are kept two generations deep: the outgoing primary is
    /// demoted to [`SNAPSHOT_PREV_FILE`] first, and compaction keeps
    /// every WAL record past the demoted generation's sequence number —
    /// so if the *new* primary is later found torn, recovery falls back
    /// one generation and replays the suffix it still needs.
    ///
    /// # Errors
    /// Encoding and filesystem failures. A crash (or injected fault)
    /// between any two steps is safe: each file moves atomically, replay
    /// skips covered records, and a failed compaction merely leaves
    /// redundant records for the next snapshot to collect.
    pub fn snapshot(&mut self, dataset: &Dataset) -> Result<(), WalError> {
        if let Some(why) = &self.poisoned {
            return Err(WalError::Poisoned(why.clone()));
        }
        let plane = self.plane.clone();
        let plane = plane.as_deref();
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        // Demote a *valid* primary to the previous generation. When the
        // primary does not load (we are re-sealing after a fallback) the
        // existing prev file is the only good generation — keep it.
        if load_snapshot(&snap_path).is_ok() {
            let bytes = std::fs::read(&snap_path)?;
            write_atomic_with(&self.dir.join(SNAPSHOT_PREV_FILE), &bytes, plane)?;
        }
        let snap = CorpusSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            seq: self.next_seq - 1,
            dataset: dataset.clone(),
        };
        let json = serde_json::to_string(&snap)
            .map_err(|e| WalError::Corrupt(format!("encoding snapshot: {e}")))?;
        write_atomic_with(&snap_path, json.as_bytes(), plane)?;
        if let Some(m) = &self.metrics {
            SolverMetrics::incr(&m.snapshot_writes);
        }
        // The previous generation now covers what the primary covered
        // before this call; compaction must keep every record past it.
        let keep_after = self.last_snapshot_seq;
        self.last_snapshot_seq = snap.seq;
        // Compact: rewrite the WAL with only the records the fallback
        // generation still needs (atomically, via rename). The scan runs
        // fault-free on purpose — compaction rewrites *acknowledged*
        // data, and injecting a read fault here would turn a simulated
        // glitch into real record loss; the plane governs the writes.
        let scan = scan_wal(&self.dir.join(WAL_FILE))?;
        let mut buf = Vec::new();
        for ev in scan.events.iter().filter(|ev| ev.seq > keep_after) {
            buf.extend_from_slice(&encode_record(ev)?);
        }
        write_atomic_with(&self.dir.join(WAL_FILE), &buf, plane)?;
        // The append handle still points at the renamed-over inode;
        // reopen it on the new file. If that fails the store must refuse
        // writes — appending to the unlinked file would lose them.
        match OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(WAL_FILE))
        {
            Ok(f) => self.wal = f,
            Err(e) => {
                self.poisoned = Some(format!("wal reopen after compaction failed: {e}"));
                return Err(e.into());
            }
        }
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Snapshot + compact if `snapshot_every` records accumulated since
    /// the last snapshot. Returns whether a snapshot was written.
    ///
    /// # Errors
    /// As for [`snapshot`](CorpusStore::snapshot).
    pub fn maybe_snapshot(&mut self, dataset: &Dataset) -> Result<bool, WalError> {
        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            self.snapshot(dataset)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::model::AspectId;
    use crate::synth::CategoryPreset;
    use crate::Polarity;

    fn base() -> Dataset {
        CategoryPreset::Toy.config(12, 5).generate()
    }

    fn add_event(d: &Dataset, seq: u64, product: u32, aspect: u32) -> ReviewEvent {
        ReviewEvent {
            seq,
            kind: EventKind::Add,
            product: ProductId(product),
            review: ReviewId(d.reviews.len() as u32),
            reviewer: d.num_reviewers,
            rating: 4,
            text: format!("streamed review {seq}"),
            mentions: vec![AspectMention {
                aspect: AspectId(aspect),
                polarity: Polarity::Positive,
            }],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comparesets_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn events_apply_and_validate() {
        let mut d = base();
        let ev = add_event(&d, 1, 0, 1);
        let before = d.reviews.len();
        d.apply_event(&ev).unwrap();
        assert_eq!(d.reviews.len(), before + 1);
        assert!(d.validate().is_empty());

        // Edit in place.
        let edit = ReviewEvent {
            kind: EventKind::Edit,
            rating: 2,
            text: "revised".into(),
            mentions: vec![],
            ..ev.clone()
        };
        d.apply_event(&edit).unwrap();
        assert_eq!(d.review(ev.review).rating, 2);
        assert!(d.validate().is_empty());

        // Delete tombstones: unlisted from the product, id table intact.
        let del = ReviewEvent {
            kind: EventKind::Delete,
            ..ev.clone()
        };
        d.apply_event(&del).unwrap();
        assert!(!d.reviews_of(ev.product).contains(&ev.review));
        assert_eq!(d.reviews.len(), before + 1);
        assert!(d.validate().is_empty());

        // Double delete is rejected; the dataset is unchanged.
        assert!(d.apply_event(&del).is_err());
        // Wrong add id is rejected.
        let mut bad = add_event(&d, 9, 0, 0);
        bad.review = ReviewId(0);
        assert!(d.check_event(&bad).is_err());
    }

    #[test]
    fn store_round_trips_through_reopen() {
        let dir = temp_dir("roundtrip");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        assert_eq!(rec.last_seq, 0);
        let mut live = rec.dataset;
        for k in 0..5 {
            let ev = add_event(&live, store.next_seq(), k % 3, k % 2);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        drop(store);

        // Reopen without the seed: durable state is self-contained.
        let (_store2, rec2) = CorpusStore::open(&dir, None, 0, None).unwrap();
        assert_eq!(rec2.replayed, 5);
        assert_eq!(rec2.last_seq, 5);
        assert_eq!(
            serde_json::to_string(&rec2.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_the_wal_and_recovery_skips_covered_records() {
        let dir = temp_dir("compact");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 3, None).unwrap();
        let mut live = rec.dataset;
        for k in 0..7 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
            store.maybe_snapshot(&live).unwrap();
        }
        // 7 appends with snapshot_every=3: snapshots at 3 and 6. The
        // previous generation covers seq 3, so compaction keeps 4..=6
        // for its fallback; record 7 is the uncompacted tail.
        let scan = scan_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan.events.len(), 4);
        assert_eq!(scan.events[0].seq, 4);
        assert!(dir.join(SNAPSHOT_PREV_FILE).exists());
        let rec2 = recover(&dir, None).unwrap();
        assert_eq!(rec2.snapshot_seq, 6);
        assert_eq!(rec2.replayed, 1, "only record 7 is past the primary");
        assert_eq!(
            serde_json::to_string(&rec2.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_instead_of_failing() {
        let dir = temp_dir("torn");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let mut live = rec.dataset;
        for k in 0..4 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        drop(store);
        // Simulate a crash mid-write: garbage bytes after the last record.
        let wal_path = dir.join(WAL_FILE);
        let clean_len = std::fs::metadata(&wal_path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&[0x13, 0x37, 0xFF]).unwrap();
        drop(f);

        let (_store2, rec2) = CorpusStore::open(&dir, None, 0, None).unwrap();
        assert_eq!(rec2.replayed, 4);
        assert_eq!(rec2.truncated_bytes, 3);
        // The reopened store truncated the tail to a clean boundary.
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), clean_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_truncates_it_and_everything_after() {
        let dir = temp_dir("midflip");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let mut live = rec.dataset;
        let mut offsets = vec![0u64];
        for k in 0..4 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
            offsets.push(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        }
        drop(store);
        // Flip one payload byte inside record 3 (index 2).
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let idx = offsets[2] as usize + 8; // first payload byte of record 3
        bytes[idx] ^= 0x5A;
        std::fs::write(&wal_path, &bytes).unwrap();

        let scan = scan_wal(&wal_path).unwrap();
        assert_eq!(scan.events.len(), 2, "records 1–2 survive, 3–4 drop");
        assert_eq!(scan.valid_len, offsets[2]);
        let rec2 = recover(&dir, None).unwrap();
        assert_eq!(rec2.replayed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_counts_into_metrics() {
        let dir = temp_dir("metrics");
        let seed = base();
        let metrics = Arc::new(SolverMetrics::new());
        let (mut store, rec) =
            CorpusStore::open(&dir, Some(&seed), 0, Some(Arc::clone(&metrics))).unwrap();
        let mut live = rec.dataset;
        for k in 0..3 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 3);
        assert_eq!(snap.wal_fsyncs, 3);
        assert_eq!(snap.snapshot_writes, 1, "the seed seal");
        drop(store);
        let fresh = Arc::new(SolverMetrics::new());
        let _ = CorpusStore::open(&dir, None, 0, Some(Arc::clone(&fresh))).unwrap();
        assert_eq!(fresh.snapshot().recovery_replayed_records, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_without_seed_is_nothing_to_recover() {
        let dir = temp_dir("nothing");
        assert!(matches!(
            CorpusStore::open(&dir, None, 0, None),
            Err(WalError::NothingToRecover(_))
        ));
        assert!(matches!(
            recover(&dir, None),
            Err(WalError::NothingToRecover(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Build a store with two snapshot generations on disk: primary at
    /// seq 6, previous at seq 3, WAL holding records 4..=7.
    fn two_generation_store(tag: &str) -> (PathBuf, Dataset) {
        let dir = temp_dir(tag);
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 3, None).unwrap();
        let mut live = rec.dataset;
        for k in 0..7 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
            store.maybe_snapshot(&live).unwrap();
        }
        drop(store);
        (dir, live)
    }

    #[test]
    fn truncated_primary_snapshot_falls_back_one_generation() {
        let (dir, live) = two_generation_store("fallback");
        // Truncate the primary mid-JSON, as a torn write would.
        let snap_path = dir.join(SNAPSHOT_FILE);
        let len = std::fs::metadata(&snap_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&snap_path).unwrap();
        f.set_len(len / 2).unwrap();
        drop(f);

        let rec = recover(&dir, None).unwrap();
        assert!(rec.snapshot_fallback);
        assert_eq!(rec.snapshot_seq, 3, "previous generation covers seq 3");
        assert_eq!(rec.replayed, 4, "records 4..=7 replay from the WAL");
        assert_eq!(rec.last_seq, 7);
        assert!(rec.faults.iter().any(|f| f.contains("primary snapshot")));
        assert!(rec.faults.iter().any(|f| f.contains("fell back")));
        assert_eq!(
            serde_json::to_string(&rec.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );

        // Reopening re-seals a healthy primary immediately.
        let (_store, rec2) = CorpusStore::open(&dir, None, 0, None).unwrap();
        assert_eq!(rec2.last_seq, 7);
        let rec3 = recover(&dir, None).unwrap();
        assert_eq!(rec3.snapshot_seq, 7);
        assert_eq!(rec3.replayed, 0);
        assert!(rec3.faults.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_fault_recovery_names_both_faults() {
        let (dir, live) = two_generation_store("double");
        // Fault 1: truncated primary snapshot.
        let snap_path = dir.join(SNAPSHOT_FILE);
        let len = std::fs::metadata(&snap_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&snap_path).unwrap();
        f.set_len(len / 2).unwrap();
        drop(f);
        // Fault 2: WAL tail corrupted mid-record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[9, 0, 0, 0, 0xAA, 0xBB]).unwrap();
        drop(f);

        let rec = recover(&dir, None).unwrap();
        assert!(rec.faults.iter().any(|f| f.contains("primary snapshot")));
        assert!(rec.faults.iter().any(|f| f.contains("wal tail torn")));
        assert_eq!(rec.truncated_bytes, 6);
        assert_eq!(rec.last_seq, 7, "both faults healed, acked prefix intact");
        assert_eq!(
            serde_json::to_string(&rec.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_generations_unusable_is_corrupt() {
        let (dir, _) = two_generation_store("bothdead");
        for name in [SNAPSHOT_FILE, SNAPSHOT_PREV_FILE] {
            std::fs::write(dir.join(name), b"{ not json").unwrap();
        }
        match recover(&dir, None) {
            Err(WalError::Corrupt(why)) => {
                assert!(why.contains("previous snapshot also unusable"), "{why}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_append_rolls_back_to_a_clean_boundary() {
        use crate::fault::FaultProfile;
        let dir = temp_dir("rollback");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let live = rec.dataset;
        // Every write tears; truncate (the rollback) stays clean.
        let torn = FaultProfile {
            fail: 0,
            disk_full: 0,
            short_write: 1024,
            bit_flip: 0,
            delay: 0,
        };
        store.set_fault_plane(Some(Arc::new(FaultPlane::with_profile(1, torn))));
        let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let ev = add_event(&live, store.next_seq(), 0, 0);
        assert!(store.append(std::slice::from_ref(&ev)).is_err());
        assert!(store.poisoned().is_none(), "rollback succeeded");
        assert_eq!(
            std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
            wal_len,
            "the torn prefix was rolled back"
        );
        // The failed batch's seq is reusable without duplicates on disk.
        store.set_fault_plane(None);
        assert_eq!(store.next_seq(), ev.seq);
        store.append(std::slice::from_ref(&ev)).unwrap();
        let scan = scan_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan.events.len(), 1);
        assert_eq!(scan.events[0].seq, ev.seq);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_store_refuses_writes_until_reopen() {
        use crate::fault::FaultProfile;
        let dir = temp_dir("poison");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let live = rec.dataset;
        // Every op fails — including the rollback truncate.
        let hostile = FaultProfile {
            fail: 1024,
            disk_full: 0,
            short_write: 0,
            bit_flip: 0,
            delay: 0,
        };
        store.set_fault_plane(Some(Arc::new(FaultPlane::with_profile(2, hostile))));
        let ev = add_event(&live, store.next_seq(), 0, 0);
        assert!(store.append(std::slice::from_ref(&ev)).is_err());
        assert!(store.poisoned().is_some());
        // Disarming the plane does not heal it: only a reopen recovers.
        store.set_fault_plane(None);
        assert!(matches!(
            store.append(std::slice::from_ref(&ev)),
            Err(WalError::Poisoned(_))
        ));
        assert!(matches!(store.snapshot(&live), Err(WalError::Poisoned(_))));
        drop(store);
        let (mut store2, rec2) = CorpusStore::open(&dir, None, 0, None).unwrap();
        assert_eq!(rec2.last_seq, 0);
        let ev = add_event(&rec2.dataset, store2.next_seq(), 0, 0);
        store2.append(std::slice::from_ref(&ev)).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_on_read_truncates_at_the_flipped_record() {
        use crate::fault::FaultProfile;
        let dir = temp_dir("bitflip");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let mut live = rec.dataset;
        for k in 0..4 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        drop(store);
        let clean = scan_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(clean.events.len(), 4);
        let flip = FaultProfile {
            fail: 0,
            disk_full: 0,
            short_write: 0,
            bit_flip: 1024,
            delay: 0,
        };
        let plane = FaultPlane::with_profile(5, flip);
        let scan = scan_wal_with(&dir.join(WAL_FILE), Some(&plane)).unwrap();
        assert!(scan.events.len() < 4, "the flipped record fails its CRC");
        // The surviving prefix is untouched.
        assert_eq!(scan.events[..], clean.events[..scan.events.len()]);
        assert_eq!(plane.injected(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_append_is_one_fsync() {
        let dir = temp_dir("batch");
        let seed = base();
        let metrics = Arc::new(SolverMetrics::new());
        let (mut store, rec) =
            CorpusStore::open(&dir, Some(&seed), 0, Some(Arc::clone(&metrics))).unwrap();
        let mut live = rec.dataset;
        let mut batch = Vec::new();
        for k in 0..4u64 {
            let ev = add_event(&live, store.next_seq() + k, (k % 3) as u32, 0);
            live.apply_event(&ev).unwrap();
            batch.push(ev);
        }
        store.append(&batch).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 4);
        assert_eq!(snap.wal_fsyncs, 1, "one fsync acknowledges the batch");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
