//! Durable streaming corpus store: write-ahead log + snapshots.
//!
//! A corpus that mutates under a serving daemon needs two guarantees
//! (ARCHITECTURE.md §11): an acknowledged review event survives a crash,
//! and recovery reconstructs *exactly* the acknowledged prefix — no
//! more, no less. This module provides both with the classic WAL +
//! snapshot pair:
//!
//! * **WAL** (`wal.log`) — an append-only log of [`ReviewEvent`]s. Each
//!   record is length-prefixed and carries a CRC32 of its payload:
//!
//!   ```text
//!   +--------------+---------------+------------------------+
//!   | len: u32 LE  | crc32: u32 LE | payload: len JSON bytes|
//!   +--------------+---------------+------------------------+
//!   ```
//!
//!   Appends are batched: one `fsync` per acknowledged batch, however
//!   many records it carries (*fsync-on-ack*). Recovery scans from the
//!   front and stops at the first record that is short, oversized, fails
//!   its CRC, or does not decode — a *torn tail* from a crash mid-write —
//!   and truncates the file there instead of failing. Everything before
//!   the tear was acknowledged and is kept; everything after was never
//!   acknowledged (the fsync that would have acked it never returned).
//!
//! * **Snapshots** (`snapshot.json`) — the full dataset under a
//!   `corpus-snapshot/v1` header (the style of the eval suite's
//!   `suite-checkpoint/v1`), written atomically via
//!   [`write_atomic`]. Once a snapshot covers a
//!   WAL prefix the log is *compacted*: appends up to the snapshot's
//!   sequence number are redundant, and since appends are strictly
//!   sequential the covered prefix is the whole log, which restarts
//!   empty. A crash between snapshot write and compaction is benign —
//!   replay skips records with `seq <= snapshot.seq`.
//!
//! [`CorpusStore`] ties the two together for the serving daemon;
//! [`recover`] is the read-only flavour behind `comparesets recover`.

use crate::io::write_atomic;
use crate::model::{AspectMention, Dataset, ProductId, Review, ReviewId};
use comparesets_obs::SolverMetrics;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema tag embedded in every corpus snapshot.
pub const SNAPSHOT_SCHEMA: &str = "corpus-snapshot/v1";

/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Hard cap on one WAL record's payload, in bytes (4 MiB — matches the
/// serve protocol's frame cap). A corrupt length prefix can therefore
/// never demand an unbounded allocation; recovery treats an oversized
/// length as a torn tail.
pub const MAX_RECORD_LEN: u32 = 4 * 1024 * 1024;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected — the ubiquitous zlib/ethernet polynomial)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum of `bytes` (IEEE polynomial, as in zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// What a [`ReviewEvent`] does to its corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Append a brand-new review to a product.
    Add,
    /// Replace an existing review's rating, text, and mentions.
    Edit,
    /// Unlist a review from its product (the `Review` record stays in
    /// the dataset's review table as a tombstone, so review ids remain
    /// stable and replay stays deterministic).
    Delete,
}

/// One corpus mutation, as logged and replayed. Flat by design — the
/// vendored `serde` derives named-field structs and fieldless enums
/// only — so `Edit`/`Delete` simply leave the fields they do not use at
/// their defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReviewEvent {
    /// Strictly increasing per-store sequence number (1-based); the
    /// snapshot/compaction handshake keys on it.
    pub seq: u64,
    /// What to do.
    pub kind: EventKind,
    /// The product the event targets.
    pub product: ProductId,
    /// The review the event targets. For `Add` this is assigned at
    /// append time as `dataset.reviews.len()`, making replay reproduce
    /// identical ids.
    pub review: ReviewId,
    /// Reviewer index (`Add` only; assigned at append time).
    #[serde(default)]
    pub reviewer: u32,
    /// Star rating 1–5 (`Add`/`Edit`).
    #[serde(default)]
    pub rating: u8,
    /// Review body (`Add`/`Edit`).
    #[serde(default)]
    pub text: String,
    /// Aspect-opinion annotations (`Add`/`Edit`).
    #[serde(default)]
    pub mentions: Vec<AspectMention>,
}

impl Dataset {
    /// Check that `ev` can apply to this dataset *right now*. The serve
    /// path validates before the WAL append, so the log only ever holds
    /// applicable events and replay is infallible in practice.
    ///
    /// # Errors
    /// A human-readable reason the event does not apply.
    pub fn check_event(&self, ev: &ReviewEvent) -> Result<(), String> {
        let np = self.products.len() as u32;
        if ev.product.0 >= np {
            return Err(format!(
                "product {:?} out of range ({} products)",
                ev.product, np
            ));
        }
        match ev.kind {
            EventKind::Add => {
                if ev.review.0 as usize != self.reviews.len() {
                    return Err(format!(
                        "add must assign the next review id {} (got {:?})",
                        self.reviews.len(),
                        ev.review
                    ));
                }
                self.check_annotations(ev)
            }
            EventKind::Edit => {
                self.check_listed(ev)?;
                self.check_annotations(ev)
            }
            EventKind::Delete => self.check_listed(ev),
        }
    }

    fn check_annotations(&self, ev: &ReviewEvent) -> Result<(), String> {
        if !(1..=5).contains(&ev.rating) {
            return Err(format!("rating {} outside 1..=5", ev.rating));
        }
        let z = self.aspects.len() as u32;
        for m in &ev.mentions {
            if m.aspect.0 >= z {
                return Err(format!("aspect {:?} out of range ({z} aspects)", m.aspect));
            }
        }
        Ok(())
    }

    fn check_listed(&self, ev: &ReviewEvent) -> Result<(), String> {
        if ev.review.0 as usize >= self.reviews.len() {
            return Err(format!(
                "review {:?} out of range ({} reviews)",
                ev.review,
                self.reviews.len()
            ));
        }
        if self.reviews[ev.review.0 as usize].product != ev.product {
            return Err(format!(
                "review {:?} belongs to {:?}, not {:?}",
                ev.review, self.reviews[ev.review.0 as usize].product, ev.product
            ));
        }
        if !self.products[ev.product.0 as usize]
            .reviews
            .contains(&ev.review)
        {
            return Err(format!(
                "review {:?} already deleted from product {:?}",
                ev.review, ev.product
            ));
        }
        Ok(())
    }

    /// Apply one event ([`check_event`](Dataset::check_event) first).
    /// Deletes are tombstones: the review id disappears from the
    /// product's listing but the `Review` record stays in the table, so
    /// every other id — and therefore replay — is unaffected.
    ///
    /// # Errors
    /// As for [`check_event`](Dataset::check_event); on error the
    /// dataset is unchanged.
    pub fn apply_event(&mut self, ev: &ReviewEvent) -> Result<(), String> {
        self.check_event(ev)?;
        match ev.kind {
            EventKind::Add => {
                self.reviews.push(Review {
                    id: ev.review,
                    product: ev.product,
                    reviewer: ev.reviewer,
                    rating: ev.rating,
                    text: ev.text.clone(),
                    mentions: ev.mentions.clone(),
                });
                self.products[ev.product.0 as usize].reviews.push(ev.review);
                self.num_reviewers = self.num_reviewers.max(ev.reviewer + 1);
            }
            EventKind::Edit => {
                let r = &mut self.reviews[ev.review.0 as usize];
                r.rating = ev.rating;
                r.text = ev.text.clone();
                r.mentions = ev.mentions.clone();
            }
            EventKind::Delete => {
                self.products[ev.product.0 as usize]
                    .reviews
                    .retain(|r| *r != ev.review);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Failures from the durable store. WAL *corruption* is deliberately
/// absent: a torn or corrupt tail truncates during recovery instead of
/// erroring (losing only never-acknowledged records).
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The snapshot file exists but is unusable (bad schema tag,
    /// malformed JSON, or an inconsistent dataset).
    Corrupt(String),
    /// A replayed event did not apply — the log and snapshot disagree
    /// (e.g. hand-edited files).
    Apply(String),
    /// Recovery was asked of a directory with no snapshot and no seed
    /// corpus to start from.
    NothingToRecover(PathBuf),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "store io error: {e}"),
            WalError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            WalError::Apply(why) => write!(f, "replayed event does not apply: {why}"),
            WalError::NothingToRecover(dir) => {
                write!(f, "no snapshot in {} and no seed corpus", dir.display())
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------

/// Frame one event as a WAL record.
fn encode_record(ev: &ReviewEvent) -> Result<Vec<u8>, WalError> {
    let payload =
        serde_json::to_string(ev).map_err(|e| WalError::Corrupt(format!("encoding event: {e}")))?;
    let payload = payload.as_bytes();
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_RECORD_LEN)
        .ok_or_else(|| WalError::Corrupt(format!("event of {} bytes", payload.len())))?;
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    Ok(rec)
}

/// What scanning a WAL file yields.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every decodable record, in log order.
    pub events: Vec<ReviewEvent>,
    /// Byte length of the valid prefix (`events` live in `[0, valid_len)`).
    pub valid_len: u64,
    /// Bytes past the valid prefix — the torn tail a crash left behind.
    pub truncated_bytes: u64,
}

/// Scan a WAL file, stopping at the first record that is short,
/// oversized, CRC-mismatched, or undecodable. Never fails on content: a
/// torn tail is reported, not an error. A missing file scans as empty.
///
/// # Errors
/// Filesystem errors only.
pub fn scan_wal(path: &Path) -> Result<WalScan, WalError> {
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(WalError::Io(e)),
    };
    let mut events = Vec::new();
    let mut off = 0usize;
    while buf.len() - off >= 8 {
        let len = u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]]);
        if len > MAX_RECORD_LEN {
            break;
        }
        let crc = u32::from_le_bytes([buf[off + 4], buf[off + 5], buf[off + 6], buf[off + 7]]);
        let Some(end) = (off + 8)
            .checked_add(len as usize)
            .filter(|e| *e <= buf.len())
        else {
            break;
        };
        let payload = &buf[off + 8..end];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(ev) = serde_json::from_str::<ReviewEvent>(text) else {
            break;
        };
        events.push(ev);
        off = end;
    }
    Ok(WalScan {
        events,
        valid_len: off as u64,
        truncated_bytes: (buf.len() - off) as u64,
    })
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A corpus snapshot on disk: the full dataset plus the sequence number
/// it covers, under the [`SNAPSHOT_SCHEMA`] tag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusSnapshot {
    /// Always [`SNAPSHOT_SCHEMA`]; checked on load.
    pub schema: String,
    /// Every event with `seq <=` this is folded into `dataset`.
    pub seq: u64,
    /// The folded corpus.
    pub dataset: Dataset,
}

fn load_snapshot(path: &Path) -> Result<CorpusSnapshot, WalError> {
    let json = std::fs::read_to_string(path)?;
    let snap: CorpusSnapshot = serde_json::from_str(&json)
        .map_err(|e| WalError::Corrupt(format!("{}: {e}", path.display())))?;
    if snap.schema != SNAPSHOT_SCHEMA {
        return Err(WalError::Corrupt(format!(
            "{}: schema {:?}, expected {SNAPSHOT_SCHEMA:?}",
            path.display(),
            snap.schema
        )));
    }
    let problems = snap.dataset.validate();
    if let Some(first) = problems.first() {
        return Err(WalError::Corrupt(format!(
            "{}: invalid dataset ({} problems, first: {first})",
            path.display(),
            problems.len()
        )));
    }
    Ok(snap)
}

// ---------------------------------------------------------------------
// Recovery + store
// ---------------------------------------------------------------------

/// What recovery reconstructed and how.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The corpus after snapshot + WAL tail.
    pub dataset: Dataset,
    /// Sequence number the snapshot covered (0 = seeded fresh).
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// Torn-tail bytes dropped from the end of the WAL.
    pub truncated_bytes: u64,
    /// Highest sequence number in the recovered state.
    pub last_seq: u64,
}

/// Read-only recovery: fold the snapshot and the WAL tail into a
/// dataset without touching either file. Behind `comparesets recover`.
///
/// # Errors
/// [`WalError::NothingToRecover`] when the directory has no snapshot;
/// snapshot corruption and filesystem failures as usual.
pub fn recover(dir: &Path, metrics: Option<&SolverMetrics>) -> Result<Recovery, WalError> {
    let snap_path = dir.join(SNAPSHOT_FILE);
    if !snap_path.exists() {
        return Err(WalError::NothingToRecover(dir.to_path_buf()));
    }
    let snap = load_snapshot(&snap_path)?;
    let scan = scan_wal(&dir.join(WAL_FILE))?;
    let mut dataset = snap.dataset;
    let mut last_seq = snap.seq;
    let mut replayed = 0u64;
    for ev in &scan.events {
        if ev.seq <= snap.seq {
            continue; // already folded into the snapshot
        }
        dataset.apply_event(ev).map_err(WalError::Apply)?;
        last_seq = ev.seq;
        replayed += 1;
    }
    if let Some(m) = metrics {
        SolverMetrics::add(&m.recovery_replayed_records, replayed);
    }
    Ok(Recovery {
        dataset,
        snapshot_seq: snap.seq,
        replayed,
        truncated_bytes: scan.truncated_bytes,
        last_seq,
    })
}

/// The durable side of one corpus shard: an open WAL append handle plus
/// the snapshot/compaction bookkeeping. The in-memory dataset lives with
/// the caller (the serving shard); the store only guarantees that what
/// was acknowledged can be rebuilt.
pub struct CorpusStore {
    dir: PathBuf,
    wal: File,
    next_seq: u64,
    records_since_snapshot: u64,
    snapshot_every: u64,
    metrics: Option<Arc<SolverMetrics>>,
}

impl CorpusStore {
    /// Open (or create) the store in `dir` and recover its corpus.
    ///
    /// Existing durable state wins: when `dir` holds a snapshot, `seed`
    /// is ignored and the corpus is snapshot + WAL tail (with any torn
    /// tail truncated so new appends start at a clean record boundary).
    /// Otherwise `seed` becomes the initial corpus and is written as the
    /// first snapshot immediately — from then on the directory is
    /// self-contained.
    ///
    /// `snapshot_every` auto-snapshots (and compacts) after that many
    /// appended records; 0 disables automatic snapshots.
    ///
    /// # Errors
    /// [`WalError::NothingToRecover`] when `dir` has no snapshot and no
    /// `seed` was given; snapshot corruption and filesystem failures.
    pub fn open(
        dir: &Path,
        seed: Option<&Dataset>,
        snapshot_every: u64,
        metrics: Option<Arc<SolverMetrics>>,
    ) -> Result<(CorpusStore, Recovery), WalError> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        let fresh = !snap_path.exists();
        let recovery = if fresh {
            let seed = seed.ok_or_else(|| WalError::NothingToRecover(dir.to_path_buf()))?;
            Recovery {
                dataset: seed.clone(),
                snapshot_seq: 0,
                replayed: 0,
                truncated_bytes: 0,
                last_seq: 0,
            }
        } else {
            recover(dir, metrics.as_deref())?
        };
        if recovery.truncated_bytes > 0 {
            // Drop the torn tail so the next append starts a clean record.
            let scan_len = scan_wal(&wal_path)?.valid_len;
            let f = OpenOptions::new().write(true).open(&wal_path)?;
            f.set_len(scan_len)?;
            f.sync_all()?;
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        let mut store = CorpusStore {
            dir: dir.to_path_buf(),
            wal,
            next_seq: recovery.last_seq + 1,
            records_since_snapshot: recovery.replayed,
            snapshot_every,
            metrics,
        };
        if fresh {
            // Seal the seed so recovery never needs it again.
            store.snapshot(&recovery.dataset)?;
        }
        Ok((store, recovery))
    }

    /// The sequence number the next appended event must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append a batch of events durably: every record is written, then
    /// **one** `fsync` covers the batch (fsync-on-ack). Only after this
    /// returns `Ok` may the caller acknowledge the batch.
    ///
    /// Events must carry consecutive sequence numbers starting at
    /// [`next_seq`](CorpusStore::next_seq) — the caller stamps them while
    /// holding its shard lock, which is what makes the log total-ordered.
    ///
    /// # Errors
    /// Encoding and filesystem failures; on error nothing was
    /// acknowledged and the next recovery truncates any partial write.
    pub fn append(&mut self, events: &[ReviewEvent]) -> Result<(), WalError> {
        let mut buf = Vec::new();
        for (k, ev) in events.iter().enumerate() {
            debug_assert_eq!(ev.seq, self.next_seq + k as u64, "non-sequential WAL batch");
            buf.extend_from_slice(&encode_record(ev)?);
        }
        self.wal.write_all(&buf)?;
        self.wal.sync_data()?;
        self.next_seq += events.len() as u64;
        self.records_since_snapshot += events.len() as u64;
        if let Some(m) = &self.metrics {
            SolverMetrics::add(&m.wal_appends, events.len() as u64);
            SolverMetrics::incr(&m.wal_fsyncs);
        }
        Ok(())
    }

    /// Write a snapshot of `dataset` (which must reflect every appended
    /// event) and compact the WAL it covers. Called automatically every
    /// `snapshot_every` records via
    /// [`maybe_snapshot`](CorpusStore::maybe_snapshot).
    ///
    /// # Errors
    /// Encoding and filesystem failures. A crash between the snapshot
    /// rename and the WAL reset is safe: replay skips covered records.
    pub fn snapshot(&mut self, dataset: &Dataset) -> Result<(), WalError> {
        let snap = CorpusSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            seq: self.next_seq - 1,
            dataset: dataset.clone(),
        };
        let json = serde_json::to_string(&snap)
            .map_err(|e| WalError::Corrupt(format!("encoding snapshot: {e}")))?;
        write_atomic(&self.dir.join(SNAPSHOT_FILE), json.as_bytes())?;
        if let Some(m) = &self.metrics {
            SolverMetrics::incr(&m.snapshot_writes);
        }
        // Compact: appends are sequential, so the snapshot covers the
        // entire log — restart it empty (atomically, via rename).
        write_atomic(&self.dir.join(WAL_FILE), &[])?;
        self.wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(WAL_FILE))?;
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Snapshot + compact if `snapshot_every` records accumulated since
    /// the last snapshot. Returns whether a snapshot was written.
    ///
    /// # Errors
    /// As for [`snapshot`](CorpusStore::snapshot).
    pub fn maybe_snapshot(&mut self, dataset: &Dataset) -> Result<bool, WalError> {
        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            self.snapshot(dataset)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::model::AspectId;
    use crate::synth::CategoryPreset;
    use crate::Polarity;

    fn base() -> Dataset {
        CategoryPreset::Toy.config(12, 5).generate()
    }

    fn add_event(d: &Dataset, seq: u64, product: u32, aspect: u32) -> ReviewEvent {
        ReviewEvent {
            seq,
            kind: EventKind::Add,
            product: ProductId(product),
            review: ReviewId(d.reviews.len() as u32),
            reviewer: d.num_reviewers,
            rating: 4,
            text: format!("streamed review {seq}"),
            mentions: vec![AspectMention {
                aspect: AspectId(aspect),
                polarity: Polarity::Positive,
            }],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comparesets_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn events_apply_and_validate() {
        let mut d = base();
        let ev = add_event(&d, 1, 0, 1);
        let before = d.reviews.len();
        d.apply_event(&ev).unwrap();
        assert_eq!(d.reviews.len(), before + 1);
        assert!(d.validate().is_empty());

        // Edit in place.
        let edit = ReviewEvent {
            kind: EventKind::Edit,
            rating: 2,
            text: "revised".into(),
            mentions: vec![],
            ..ev.clone()
        };
        d.apply_event(&edit).unwrap();
        assert_eq!(d.review(ev.review).rating, 2);
        assert!(d.validate().is_empty());

        // Delete tombstones: unlisted from the product, id table intact.
        let del = ReviewEvent {
            kind: EventKind::Delete,
            ..ev.clone()
        };
        d.apply_event(&del).unwrap();
        assert!(!d.reviews_of(ev.product).contains(&ev.review));
        assert_eq!(d.reviews.len(), before + 1);
        assert!(d.validate().is_empty());

        // Double delete is rejected; the dataset is unchanged.
        assert!(d.apply_event(&del).is_err());
        // Wrong add id is rejected.
        let mut bad = add_event(&d, 9, 0, 0);
        bad.review = ReviewId(0);
        assert!(d.check_event(&bad).is_err());
    }

    #[test]
    fn store_round_trips_through_reopen() {
        let dir = temp_dir("roundtrip");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        assert_eq!(rec.last_seq, 0);
        let mut live = rec.dataset;
        for k in 0..5 {
            let ev = add_event(&live, store.next_seq(), k % 3, k % 2);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        drop(store);

        // Reopen without the seed: durable state is self-contained.
        let (_store2, rec2) = CorpusStore::open(&dir, None, 0, None).unwrap();
        assert_eq!(rec2.replayed, 5);
        assert_eq!(rec2.last_seq, 5);
        assert_eq!(
            serde_json::to_string(&rec2.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_the_wal_and_recovery_skips_covered_records() {
        let dir = temp_dir("compact");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 3, None).unwrap();
        let mut live = rec.dataset;
        for k in 0..7 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
            store.maybe_snapshot(&live).unwrap();
        }
        // 7 appends with snapshot_every=3: snapshots at 3 and 6, so the
        // WAL holds only record 7.
        let scan = scan_wal(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(scan.events.len(), 1);
        assert_eq!(scan.events[0].seq, 7);
        let rec2 = recover(&dir, None).unwrap();
        assert_eq!(rec2.snapshot_seq, 6);
        assert_eq!(rec2.replayed, 1);
        assert_eq!(
            serde_json::to_string(&rec2.dataset).unwrap(),
            serde_json::to_string(&live).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_instead_of_failing() {
        let dir = temp_dir("torn");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let mut live = rec.dataset;
        for k in 0..4 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        drop(store);
        // Simulate a crash mid-write: garbage bytes after the last record.
        let wal_path = dir.join(WAL_FILE);
        let clean_len = std::fs::metadata(&wal_path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&wal_path).unwrap();
        f.write_all(&[0x13, 0x37, 0xFF]).unwrap();
        drop(f);

        let (_store2, rec2) = CorpusStore::open(&dir, None, 0, None).unwrap();
        assert_eq!(rec2.replayed, 4);
        assert_eq!(rec2.truncated_bytes, 3);
        // The reopened store truncated the tail to a clean boundary.
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), clean_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_truncates_it_and_everything_after() {
        let dir = temp_dir("midflip");
        let seed = base();
        let (mut store, rec) = CorpusStore::open(&dir, Some(&seed), 0, None).unwrap();
        let mut live = rec.dataset;
        let mut offsets = vec![0u64];
        for k in 0..4 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
            offsets.push(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len());
        }
        drop(store);
        // Flip one payload byte inside record 3 (index 2).
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let idx = offsets[2] as usize + 8; // first payload byte of record 3
        bytes[idx] ^= 0x5A;
        std::fs::write(&wal_path, &bytes).unwrap();

        let scan = scan_wal(&wal_path).unwrap();
        assert_eq!(scan.events.len(), 2, "records 1–2 survive, 3–4 drop");
        assert_eq!(scan.valid_len, offsets[2]);
        let rec2 = recover(&dir, None).unwrap();
        assert_eq!(rec2.replayed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_counts_into_metrics() {
        let dir = temp_dir("metrics");
        let seed = base();
        let metrics = Arc::new(SolverMetrics::new());
        let (mut store, rec) =
            CorpusStore::open(&dir, Some(&seed), 0, Some(Arc::clone(&metrics))).unwrap();
        let mut live = rec.dataset;
        for k in 0..3 {
            let ev = add_event(&live, store.next_seq(), k % 3, 0);
            store.append(std::slice::from_ref(&ev)).unwrap();
            live.apply_event(&ev).unwrap();
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 3);
        assert_eq!(snap.wal_fsyncs, 3);
        assert_eq!(snap.snapshot_writes, 1, "the seed seal");
        drop(store);
        let fresh = Arc::new(SolverMetrics::new());
        let _ = CorpusStore::open(&dir, None, 0, Some(Arc::clone(&fresh))).unwrap();
        assert_eq!(fresh.snapshot().recovery_replayed_records, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_without_seed_is_nothing_to_recover() {
        let dir = temp_dir("nothing");
        assert!(matches!(
            CorpusStore::open(&dir, None, 0, None),
            Err(WalError::NothingToRecover(_))
        ));
        assert!(matches!(
            recover(&dir, None),
            Err(WalError::NothingToRecover(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_append_is_one_fsync() {
        let dir = temp_dir("batch");
        let seed = base();
        let metrics = Arc::new(SolverMetrics::new());
        let (mut store, rec) =
            CorpusStore::open(&dir, Some(&seed), 0, Some(Arc::clone(&metrics))).unwrap();
        let mut live = rec.dataset;
        let mut batch = Vec::new();
        for k in 0..4u64 {
            let ev = add_event(&live, store.next_seq() + k, (k % 3) as u32, 0);
            live.apply_event(&ev).unwrap();
            batch.push(ev);
        }
        store.append(&batch).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.wal_appends, 4);
        assert_eq!(snap.wal_fsyncs, 1, "one fsync acknowledges the batch");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
