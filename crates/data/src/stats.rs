//! Dataset statistics (Table 2).
//!
//! "Table 2: Data statistics" reports, per category: #Product, #Reviewer,
//! #Review, #Target Product, Avg. #Comparison Product, and Avg. #Review
//! per Product. [`DatasetStats::compute`] derives the same quantities from
//! any [`Dataset`].

use crate::model::Dataset;

/// Summary statistics of a dataset, matching Table 2's rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of products.
    pub num_products: usize,
    /// Number of distinct reviewers.
    pub num_reviewers: usize,
    /// Number of reviews.
    pub num_reviews: usize,
    /// Number of valid target products (products with reviews and at least
    /// one reviewed comparison product).
    pub num_target_products: usize,
    /// Average number of comparison products per target product.
    pub avg_comparison_products: f64,
    /// Average number of reviews per product, over products with reviews.
    pub avg_reviews_per_product: f64,
}

impl DatasetStats {
    /// Compute statistics for a dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        let instances = dataset.instances();
        let num_target_products = instances.len();
        let avg_comparison_products = if instances.is_empty() {
            0.0
        } else {
            instances
                .iter()
                .map(|i| i.comparatives().len() as f64)
                .sum::<f64>()
                / instances.len() as f64
        };
        let reviewed: Vec<usize> = dataset
            .products
            .iter()
            .filter(|p| !p.reviews.is_empty())
            .map(|p| p.reviews.len())
            .collect();
        let avg_reviews_per_product = if reviewed.is_empty() {
            0.0
        } else {
            reviewed.iter().sum::<usize>() as f64 / reviewed.len() as f64
        };
        DatasetStats {
            name: dataset.name.clone(),
            num_products: dataset.products.len(),
            num_reviewers: dataset.num_reviewers as usize,
            num_reviews: dataset.reviews.len(),
            num_target_products,
            avg_comparison_products,
            avg_reviews_per_product,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Dataset: {}", self.name)?;
        writeln!(f, "  #Product                  {}", self.num_products)?;
        writeln!(f, "  #Reviewer                 {}", self.num_reviewers)?;
        writeln!(f, "  #Review                   {}", self.num_reviews)?;
        writeln!(
            f,
            "  #Target Product           {}",
            self.num_target_products
        )?;
        writeln!(
            f,
            "  Avg. #Comparison Product  {:.2}",
            self.avg_comparison_products
        )?;
        write!(
            f,
            "  Avg. #Review per Product  {:.2}",
            self.avg_reviews_per_product
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CategoryPreset;

    #[test]
    fn stats_are_internally_consistent() {
        let d = CategoryPreset::Cellphone.config(80, 3).generate();
        let s = DatasetStats::compute(&d);
        assert_eq!(s.num_products, 80);
        assert_eq!(s.num_reviews, d.reviews.len());
        assert!(s.num_target_products <= s.num_products);
        assert!(s.avg_reviews_per_product >= 1.0);
        assert!(s.avg_comparison_products >= 1.0);
    }

    #[test]
    fn category_averages_track_presets() {
        // Clothing has the shortest comparison lists in Table 2; verify the
        // generated corpora preserve the ordering Toy > Cellphone > Clothing.
        let toy = DatasetStats::compute(&CategoryPreset::Toy.config(150, 1).generate());
        let cell = DatasetStats::compute(&CategoryPreset::Cellphone.config(150, 1).generate());
        let cloth = DatasetStats::compute(&CategoryPreset::Clothing.config(150, 1).generate());
        assert!(toy.avg_comparison_products > cloth.avg_comparison_products);
        assert!(cell.avg_comparison_products > cloth.avg_comparison_products);
        // Reviews/product: Cellphone > Toy ≈ Clothing.
        assert!(cell.avg_reviews_per_product > cloth.avg_reviews_per_product);
    }

    #[test]
    fn display_includes_all_rows() {
        let d = CategoryPreset::Toy.config(30, 9).generate();
        let text = DatasetStats::compute(&d).to_string();
        for needle in [
            "#Product",
            "#Reviewer",
            "#Review",
            "#Target Product",
            "Avg. #Comparison Product",
            "Avg. #Review per Product",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_dataset_stats_are_zero() {
        let d = Dataset {
            name: "empty".into(),
            aspects: vec!["a".into()],
            products: vec![],
            reviews: vec![],
            num_reviewers: 0,
        };
        let s = DatasetStats::compute(&d);
        assert_eq!(s.num_target_products, 0);
        assert_eq!(s.avg_comparison_products, 0.0);
        assert_eq!(s.avg_reviews_per_product, 0.0);
    }
}
