//! Observability layer shared by the solver stack.
//!
//! Two independent channels (ARCHITECTURE.md §7):
//!
//! * **Tracing** — human-readable, levelled text on stderr. Enabled with
//!   [`init_stderr_tracing`]; spans and events come from the `tracing`
//!   macros sprinkled through `crates/linalg`, `crates/core`,
//!   `crates/eval`, and `crates/cli`. Off by default; a disabled callsite
//!   costs one relaxed atomic load.
//! * **Metrics** — machine-readable counters in [`SolverMetrics`],
//!   threaded through `SolveOptions` as an `Option<Arc<SolverMetrics>>`.
//!   `None` (the default) skips every counter update and clock read; the
//!   solver hot paths never touch an atomic or an `Instant` unless a
//!   collector was installed. [`SolverMetrics::snapshot`] freezes the
//!   counters into a serialisable [`MetricsSnapshot`]; [`MetricsReport`]
//!   wraps a snapshot with run identity for `--metrics-json`.
//!
//! Counters are relaxed atomics: increments from rayon workers interleave
//! freely, but because the solvers do identical work in parallel and
//! sequential mode (item-order reduction), the *aggregate* totals are
//! identical either way — pinned by `crates/core/tests/metrics.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

mod cancel;

pub use cancel::{CancelToken, SolveCtl};

/// Schema tag embedded in every [`MetricsReport`]; bump on breaking
/// layout changes so downstream tooling can detect drift.
///
/// v2 added the preemption/ingestion counters `cancellation_checks`,
/// `deadline_expirations`, and `io_retries`. v3 added the warm-start and
/// incremental-correlation counters `warm_start_hits`,
/// `warm_start_truncations`, `corr_incremental_updates`, and
/// `corr_exact_recomputes`. v4 added the serving counters
/// `serve_requests`, `serve_full_hits`, `serve_warm_hits`,
/// `serve_cache_misses`, `serve_cache_evictions`, and `serve_degraded`.
/// v5 added the durability counters `wal_appends`, `wal_fsyncs`,
/// `snapshot_writes`, `recovery_replayed_records`, and
/// `cache_invalidations`. v6 added the branch-and-bound counters
/// `bnb_nodes`, `bnb_prunes`, `bnb_incumbent_updates`, and `bnb_steals`.
/// v7 added the chaos/drain counters `faults_injected`,
/// `drain_initiated`, `connections_timed_out`, and `health_checks`.
/// v8 added the sparse-kernel counters `sparse_corr_scans`,
/// `dense_corr_scans`, `sparse_gram_builds`, and `simd_blocks`.
pub const METRICS_SCHEMA: &str = "comparesets-metrics/v8";

/// Shared counter block for one logical run (a CLI command, an eval
/// experiment, a test solve). Cheap to share via `Arc`; all updates are
/// relaxed atomic adds.
#[derive(Debug, Default)]
pub struct SolverMetrics {
    /// NOMP pursuits started (one per `nomp_path`/`nomp` call).
    pub nomp_pursuits: AtomicU64,
    /// Greedy atom-selection iterations across all pursuits.
    pub nomp_iterations: AtomicU64,
    /// Budget snapshots recorded by path-mode pursuits (one per ℓ).
    pub path_snapshots: AtomicU64,
    /// Refits served from the incrementally maintained Gram cache
    /// (every refit after the first within a pursuit).
    pub gram_cache_hits: AtomicU64,
    /// NNLS refits performed (one per accepted atom).
    pub nnls_refits: AtomicU64,
    /// Outer Lawson–Hanson iterations summed over all refits.
    pub nnls_iterations: AtomicU64,
    /// Refits that hit the 3n+10 outer-iteration cap without converging.
    pub nnls_cap_hits: AtomicU64,
    /// Gram solves that fell back from Cholesky to Householder QR.
    pub fallback_qr: AtomicU64,
    /// Gram solves that fell through QR to the ridge-regularised retry.
    pub fallback_ridge: AtomicU64,
    /// Per-item integer regressions solved (Algorithm 1 inner problem).
    pub integer_regressions: AtomicU64,
    /// Per-item Gauss–Seidel steps in the CompaReSetS+ alternation.
    pub alternation_rounds: AtomicU64,
    /// Alternation steps whose candidate improved the coupled cost.
    pub alternation_accepts: AtomicU64,
    /// Wall nanoseconds inside NOMP pursuits (greedy loop + refits).
    pub pursuit_nanos: AtomicU64,
    /// Wall nanoseconds inside NNLS refits (subset of `pursuit_nanos`).
    pub refit_nanos: AtomicU64,
    /// Cancellation-token polls performed (counted only when a token is
    /// installed; token-less solves never touch this).
    pub cancellation_checks: AtomicU64,
    /// Solves that observed a fired token/deadline and stopped early
    /// with their best-so-far iterate.
    pub deadline_expirations: AtomicU64,
    /// Transient ingestion I/O errors absorbed by the retrying reader.
    pub io_retries: AtomicU64,
    /// Warm-start iterations served from a validated previous trajectory
    /// (full-target reuse, or a replayed atom whose refit inputs matched
    /// the cached refit bit-for-bit — no NNLS refit executed).
    pub warm_start_hits: AtomicU64,
    /// Warm-start replays abandoned at the first cached atom that was no
    /// longer the argmax (or whose refit inputs changed); at most one per
    /// pursuit — the pursuit continues cold from the truncation point.
    pub warm_start_truncations: AtomicU64,
    /// Correlation-vector columns updated by the Gram downdate
    /// `c ← c − Δη·G[:,j]` instead of a full `Aᵀr` scan.
    pub corr_incremental_updates: AtomicU64,
    /// Exact `Aᵀr` recomputes bounding incremental-correlation drift
    /// (periodic, plus a residual-floor safety trigger).
    pub corr_exact_recomputes: AtomicU64,
    /// Solve requests admitted by the serving daemon (every request that
    /// reached the session cache, whatever its outcome).
    pub serve_requests: AtomicU64,
    /// Requests answered verbatim from the session cache's result layer —
    /// an exact repeat of a completed query; no solver work at all.
    pub serve_full_hits: AtomicU64,
    /// Requests that found per-item warm states in the session cache and
    /// re-solved through validated reuse instead of from scratch.
    pub serve_warm_hits: AtomicU64,
    /// Requests that found nothing reusable and solved cold.
    pub serve_cache_misses: AtomicU64,
    /// Session-cache entries evicted by the LRU capacity bound (result,
    /// context, and warm-state entries all count here).
    pub serve_cache_evictions: AtomicU64,
    /// Requests answered with a degraded best-so-far selection because
    /// their admission deadline expired mid-solve.
    pub serve_degraded: AtomicU64,
    /// Review events appended to a write-ahead log (one per record, even
    /// when a batch shares a single fsync).
    pub wal_appends: AtomicU64,
    /// `fsync` calls issued for WAL durability (one per acknowledged
    /// batch — the fsync-on-ack contract).
    pub wal_fsyncs: AtomicU64,
    /// Corpus snapshots written atomically (each one also compacts the
    /// WAL it covers).
    pub snapshot_writes: AtomicU64,
    /// WAL records replayed on top of a snapshot during crash recovery.
    pub recovery_replayed_records: AtomicU64,
    /// Session-cache entries dropped because an ingested event mutated
    /// an item they were keyed on.
    pub cache_invalidations: AtomicU64,
    /// TargetHkS branch-and-bound nodes expanded (sequential and parallel
    /// workers both count here; the aggregate equals `ExactResult.nodes`).
    pub bnb_nodes: AtomicU64,
    /// Subtrees discarded because their admissible upper bound could not
    /// beat the shared incumbent.
    pub bnb_prunes: AtomicU64,
    /// Strict improvements published to the shared best-incumbent (the
    /// greedy warm start does not count; it seeds the incumbent).
    pub bnb_incumbent_updates: AtomicU64,
    /// Frontier subproblems a worker pulled that a *different* worker
    /// produced (cross-worker work transfer; always zero sequentially).
    pub bnb_steals: AtomicU64,
    /// Faults a chaos-plane schedule injected into durability I/O
    /// (always zero in production runs — no plane is armed).
    pub faults_injected: AtomicU64,
    /// Graceful drains begun (SIGTERM or in-band shutdown while serving).
    pub drain_initiated: AtomicU64,
    /// Connections closed for blowing a read/write or per-frame deadline
    /// (slowloris peers, stalled sockets).
    pub connections_timed_out: AtomicU64,
    /// `health` ops answered by the serving daemon.
    pub health_checks: AtomicU64,
    /// Full correlation scans (`c = Aᵀr`) executed against a sparse (CSC)
    /// design matrix — stored-entry iteration, no dense column walks.
    pub sparse_corr_scans: AtomicU64,
    /// Full correlation scans executed against a dense design matrix
    /// (the chunked-SIMD fallback path).
    pub dense_corr_scans: AtomicU64,
    /// Gram columns/rows built from sparse column-column intersections
    /// (merge-joins over stored entries) instead of dense column dots.
    pub sparse_gram_builds: AtomicU64,
    /// Full 4-lane SIMD blocks executed by the dense chunked kernels on
    /// metered hot paths (correlation scans and blocked NNLS dual
    /// refreshes); scalar tails are not counted. Zero for pure-sparse
    /// solves — the complement of `sparse_corr_scans` coverage.
    pub simd_blocks: AtomicU64,
}

impl SolverMetrics {
    /// A fresh collector with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter (relaxed; aggregate order does not matter).
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to a counter.
    #[inline]
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add a wall-time duration to a nanosecond counter (saturating).
    #[inline]
    pub fn add_time(counter: &AtomicU64, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        counter.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Freeze the counters into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            nomp_pursuits: self.nomp_pursuits.load(Ordering::Relaxed),
            nomp_iterations: self.nomp_iterations.load(Ordering::Relaxed),
            path_snapshots: self.path_snapshots.load(Ordering::Relaxed),
            gram_cache_hits: self.gram_cache_hits.load(Ordering::Relaxed),
            nnls_refits: self.nnls_refits.load(Ordering::Relaxed),
            nnls_iterations: self.nnls_iterations.load(Ordering::Relaxed),
            nnls_cap_hits: self.nnls_cap_hits.load(Ordering::Relaxed),
            fallback_qr: self.fallback_qr.load(Ordering::Relaxed),
            fallback_ridge: self.fallback_ridge.load(Ordering::Relaxed),
            integer_regressions: self.integer_regressions.load(Ordering::Relaxed),
            alternation_rounds: self.alternation_rounds.load(Ordering::Relaxed),
            alternation_accepts: self.alternation_accepts.load(Ordering::Relaxed),
            pursuit_nanos: self.pursuit_nanos.load(Ordering::Relaxed),
            refit_nanos: self.refit_nanos.load(Ordering::Relaxed),
            cancellation_checks: self.cancellation_checks.load(Ordering::Relaxed),
            deadline_expirations: self.deadline_expirations.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            warm_start_hits: self.warm_start_hits.load(Ordering::Relaxed),
            warm_start_truncations: self.warm_start_truncations.load(Ordering::Relaxed),
            corr_incremental_updates: self.corr_incremental_updates.load(Ordering::Relaxed),
            corr_exact_recomputes: self.corr_exact_recomputes.load(Ordering::Relaxed),
            serve_requests: self.serve_requests.load(Ordering::Relaxed),
            serve_full_hits: self.serve_full_hits.load(Ordering::Relaxed),
            serve_warm_hits: self.serve_warm_hits.load(Ordering::Relaxed),
            serve_cache_misses: self.serve_cache_misses.load(Ordering::Relaxed),
            serve_cache_evictions: self.serve_cache_evictions.load(Ordering::Relaxed),
            serve_degraded: self.serve_degraded.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            snapshot_writes: self.snapshot_writes.load(Ordering::Relaxed),
            recovery_replayed_records: self.recovery_replayed_records.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            bnb_nodes: self.bnb_nodes.load(Ordering::Relaxed),
            bnb_prunes: self.bnb_prunes.load(Ordering::Relaxed),
            bnb_incumbent_updates: self.bnb_incumbent_updates.load(Ordering::Relaxed),
            bnb_steals: self.bnb_steals.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            drain_initiated: self.drain_initiated.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            health_checks: self.health_checks.load(Ordering::Relaxed),
            sparse_corr_scans: self.sparse_corr_scans.load(Ordering::Relaxed),
            dense_corr_scans: self.dense_corr_scans.load(Ordering::Relaxed),
            sparse_gram_builds: self.sparse_gram_builds.load(Ordering::Relaxed),
            simd_blocks: self.simd_blocks.load(Ordering::Relaxed),
        }
    }
}

/// Frozen [`SolverMetrics`] counters — plain data, serialisable, and
/// comparable (the parallel-equals-sequential metrics test relies on
/// `PartialEq`). Field meanings match the `SolverMetrics` docs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct MetricsSnapshot {
    pub nomp_pursuits: u64,
    pub nomp_iterations: u64,
    pub path_snapshots: u64,
    pub gram_cache_hits: u64,
    pub nnls_refits: u64,
    pub nnls_iterations: u64,
    pub nnls_cap_hits: u64,
    pub fallback_qr: u64,
    pub fallback_ridge: u64,
    pub integer_regressions: u64,
    pub alternation_rounds: u64,
    pub alternation_accepts: u64,
    pub pursuit_nanos: u64,
    pub refit_nanos: u64,
    #[serde(default)]
    pub cancellation_checks: u64,
    #[serde(default)]
    pub deadline_expirations: u64,
    #[serde(default)]
    pub io_retries: u64,
    #[serde(default)]
    pub warm_start_hits: u64,
    #[serde(default)]
    pub warm_start_truncations: u64,
    #[serde(default)]
    pub corr_incremental_updates: u64,
    #[serde(default)]
    pub corr_exact_recomputes: u64,
    #[serde(default)]
    pub serve_requests: u64,
    #[serde(default)]
    pub serve_full_hits: u64,
    #[serde(default)]
    pub serve_warm_hits: u64,
    #[serde(default)]
    pub serve_cache_misses: u64,
    #[serde(default)]
    pub serve_cache_evictions: u64,
    #[serde(default)]
    pub serve_degraded: u64,
    #[serde(default)]
    pub wal_appends: u64,
    #[serde(default)]
    pub wal_fsyncs: u64,
    #[serde(default)]
    pub snapshot_writes: u64,
    #[serde(default)]
    pub recovery_replayed_records: u64,
    #[serde(default)]
    pub cache_invalidations: u64,
    #[serde(default)]
    pub bnb_nodes: u64,
    #[serde(default)]
    pub bnb_prunes: u64,
    #[serde(default)]
    pub bnb_incumbent_updates: u64,
    #[serde(default)]
    pub bnb_steals: u64,
    #[serde(default)]
    pub faults_injected: u64,
    #[serde(default)]
    pub drain_initiated: u64,
    #[serde(default)]
    pub connections_timed_out: u64,
    #[serde(default)]
    pub health_checks: u64,
    #[serde(default)]
    pub sparse_corr_scans: u64,
    #[serde(default)]
    pub dense_corr_scans: u64,
    #[serde(default)]
    pub sparse_gram_builds: u64,
    #[serde(default)]
    pub simd_blocks: u64,
}

impl MetricsSnapshot {
    /// True when no counter ever fired (e.g. a non-solving CLI command).
    pub fn is_empty(&self) -> bool {
        *self == MetricsSnapshot::default()
    }
}

/// Machine-readable per-run report written by `--metrics-json` and
/// embedded per experiment in the eval suite report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Always [`METRICS_SCHEMA`]; validated by the schema tests.
    pub schema: String,
    /// What ran: a CLI command name or an eval experiment name.
    pub command: String,
    /// End-to-end wall time of the run in milliseconds.
    pub wall_ms: f64,
    /// The frozen solver counters for the run.
    pub metrics: MetricsSnapshot,
}

impl MetricsReport {
    /// Assemble a report for `command` from a live collector.
    pub fn new(command: &str, wall: Duration, metrics: &SolverMetrics) -> Self {
        Self::from_snapshot(command, wall, metrics.snapshot())
    }

    /// Assemble a report from an already-frozen snapshot.
    pub fn from_snapshot(command: &str, wall: Duration, metrics: MetricsSnapshot) -> Self {
        MetricsReport {
            schema: METRICS_SCHEMA.to_string(),
            command: command.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            metrics,
        }
    }

    /// Check the embedded schema tag.
    pub fn schema_matches(&self) -> bool {
        self.schema == METRICS_SCHEMA
    }
}

/// Stderr subscriber behind [`init_stderr_tracing`]: one line per event,
/// one line per closed span (with busy time in microseconds).
struct StderrSubscriber;

impl tracing::Subscriber for StderrSubscriber {
    fn event(&self, level: tracing::Level, target: &str, message: &str) {
        eprintln!("{level:>5} {target}: {message}");
    }

    fn span_close(
        &self,
        level: tracing::Level,
        target: &str,
        name: &str,
        fields: &str,
        busy: Duration,
    ) {
        eprintln!(
            "{level:>5} {target}: close {name}{fields} busy={:.1}us",
            busy.as_secs_f64() * 1e6
        );
    }
}

/// Enable human-readable tracing on stderr at `level` and above.
///
/// Idempotent: installing the subscriber twice is harmless (the first
/// install wins), and the max level is always updated — so the CLI and
/// tests may call this freely.
pub fn init_stderr_tracing(level: tracing::Level) {
    let _ = tracing::subscriber::set_global_default(StderrSubscriber);
    tracing::set_max_level(Some(level));
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = SolverMetrics::new();
        SolverMetrics::incr(&m.nomp_pursuits);
        SolverMetrics::add(&m.nomp_iterations, 7);
        SolverMetrics::add_time(&m.pursuit_nanos, Duration::from_micros(3));
        let snap = m.snapshot();
        assert_eq!(snap.nomp_pursuits, 1);
        assert_eq!(snap.nomp_iterations, 7);
        assert_eq!(snap.pursuit_nanos, 3_000);
        assert!(!snap.is_empty());
        assert!(SolverMetrics::new().snapshot().is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let m = SolverMetrics::new();
        SolverMetrics::add(&m.integer_regressions, 12);
        let report = MetricsReport::new("select", Duration::from_millis(8), &m);
        assert!(report.schema_matches());
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.metrics.integer_regressions, 12);
        assert!((back.wall_ms - 8.0).abs() < 1e-9);
    }
}
