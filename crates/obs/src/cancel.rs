//! Cooperative cancellation for the iterative solver kernels.
//!
//! A [`CancelToken`] is a shared latch the caller arms (explicitly via
//! [`CancelToken::cancel`], implicitly via a wall-clock deadline, or — for
//! deterministic tests — after a fixed number of observations) and the
//! solvers poll at well-defined points: once per NOMP pursuit iteration,
//! once per NNLS outer iteration, once per item, and once per alternation
//! round (ARCHITECTURE.md §8). Polling is *cooperative*: a fired token
//! never aborts mid-refit, it makes the enclosing loop take its existing
//! early-exit path, so every observer still hands back a feasible
//! iterate (anytime semantics).
//!
//! The token is monotone — once fired it stays fired — which is what lets
//! the eval harness reason about work that completed *while* the token was
//! fired (such work may have degraded to fallbacks and is discarded rather
//! than checkpointed).
//!
//! [`SolveCtl`] bundles the optional metrics collector and the optional
//! token into one copyable handle so the kernel signatures stay flat. Both
//! sides default to `None`, and an absent token costs exactly one pointer
//! check per poll site — solves without a token are bit-identical to the
//! pre-cancellation code (pinned by `crates/core/tests/determinism.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::SolverMetrics;

/// A shared, monotone cancellation latch with an optional wall-clock
/// deadline and an optional deterministic check budget.
///
/// Share it via `Arc` between the controlling thread and the solver; all
/// operations are relaxed atomics (the latch is advisory — there is no
/// ordering dependency between firing and the solver's next poll).
#[derive(Debug, Default)]
pub struct CancelToken {
    /// The latch. Set explicitly by [`cancel`](Self::cancel) or lazily by
    /// the first check that observes an expired deadline / budget.
    fired: AtomicBool,
    /// Wall-clock point after which checks report cancelled.
    deadline: Option<Instant>,
    /// Remaining checks before the token self-fires (deterministic
    /// kill-point for tests; see [`cancel_after`](Self::cancel_after)).
    check_budget: Option<AtomicU64>,
}

impl CancelToken {
    /// A token that only fires when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires once `Instant::now()` reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            fired: AtomicBool::new(false),
            deadline: Some(deadline),
            check_budget: None,
        }
    }

    /// A token that fires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A token that reports not-cancelled for exactly `checks`
    /// observations of [`is_cancelled`](Self::is_cancelled), then fires.
    ///
    /// This is the deterministic stand-in for a deadline: a wall-clock
    /// deadline interrupts the solver after some *prefix* of its check
    /// sequence, and `cancel_after(n)` pins that prefix length exactly, so
    /// tests can replay every possible kill point. Only meaningful under
    /// sequential solves (parallel workers race for the budget).
    pub fn cancel_after(checks: u64) -> Self {
        CancelToken {
            fired: AtomicBool::new(false),
            deadline: None,
            check_budget: Some(AtomicU64::new(checks)),
        }
    }

    /// Fire the latch. Idempotent; takes effect at each observer's next
    /// poll.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Relaxed);
    }

    /// Poll the token: true once fired. An expired deadline or exhausted
    /// check budget latches [`fired`](Self::fired) so later polls are a
    /// single atomic load. This is the *consuming* check (it spends one
    /// unit of a `cancel_after` budget); solvers call it through
    /// [`SolveCtl::is_cancelled`] so the poll is also counted.
    pub fn is_cancelled(&self) -> bool {
        if self.fired.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.fired.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(budget) = &self.check_budget {
            let exhausted = budget
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_err();
            if exhausted {
                self.fired.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Non-consuming peek: has the token fired?
    ///
    /// Unlike [`is_cancelled`](Self::is_cancelled) this never spends a
    /// `cancel_after` budget unit, but it does latch an expired deadline.
    /// The eval harness uses it after each experiment to decide whether
    /// the result is trustworthy enough to checkpoint.
    pub fn fired(&self) -> bool {
        if self.fired.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.fired.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// Per-solve control handle: the optional metrics collector and the
/// optional cancellation token, bundled so kernel signatures take one
/// parameter instead of two.
///
/// `Copy` by design — it is two pointers; pass it by value down the call
/// tree. `SolveCtl::default()` (both `None`) is the zero-cost path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveCtl<'a> {
    /// Counter block to record into, if any.
    pub metrics: Option<&'a SolverMetrics>,
    /// Cancellation latch to poll, if any.
    pub cancel: Option<&'a CancelToken>,
}

impl<'a> SolveCtl<'a> {
    /// A handle carrying only a metrics collector (the pre-cancellation
    /// `*_metered` surface delegates through this).
    pub fn metered(metrics: Option<&'a SolverMetrics>) -> Self {
        SolveCtl {
            metrics,
            cancel: None,
        }
    }

    /// A handle carrying both sides.
    pub fn new(metrics: Option<&'a SolverMetrics>, cancel: Option<&'a CancelToken>) -> Self {
        SolveCtl { metrics, cancel }
    }

    /// Poll the token (if any), counting the poll in
    /// `cancellation_checks` (if a collector is installed). Absent token:
    /// one pointer check, no atomics, always false.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match self.cancel {
            None => false,
            Some(token) => {
                if let Some(m) = self.metrics {
                    SolverMetrics::incr(&m.cancellation_checks);
                }
                token.is_cancelled()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn plain_token_fires_only_on_cancel() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.fired());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.fired());
    }

    #[test]
    fn deadline_token_latches_on_expiry() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latched: subsequent polls stay cancelled without re-reading the clock.
        assert!(t.is_cancelled());
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(!far.fired());
    }

    #[test]
    fn cancel_after_spends_exactly_the_budget() {
        let t = CancelToken::cancel_after(3);
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(!t.is_cancelled());
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn fired_peek_does_not_spend_budget() {
        let t = CancelToken::cancel_after(1);
        assert!(!t.fired());
        assert!(!t.fired());
        assert!(!t.is_cancelled()); // spends the single budget unit
        assert!(!t.fired()); // peek still does not fire the latch...
        assert!(t.is_cancelled()); // ...the next consuming poll does
        assert!(t.fired());
    }

    #[test]
    fn ctl_counts_polls_only_when_token_present() {
        let m = SolverMetrics::new();
        let none = SolveCtl::metered(Some(&m));
        assert!(!none.is_cancelled());
        assert_eq!(m.snapshot().cancellation_checks, 0);

        let token = CancelToken::new();
        let ctl = SolveCtl::new(Some(&m), Some(&token));
        assert!(!ctl.is_cancelled());
        token.cancel();
        assert!(ctl.is_cancelled());
        assert_eq!(m.snapshot().cancellation_checks, 2);
    }
}
