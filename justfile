# Local equivalents of the CI gates (.github/workflows/ci.yml).

# Run every CI gate in order.
ci: fmt-check clippy build test doctest smoke

fmt:
    cargo fmt

fmt-check:
    cargo fmt --check

# -D warnings also enforces the workspace lints (clippy::unwrap_used /
# expect_used) that linalg and core opt into: library code on the solve
# path must return typed errors, never unwrap.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

build:
    cargo build --workspace --release

test:
    cargo test --workspace -q

doctest:
    cargo test --workspace --doc -q

# End-to-end observability smoke: generate a small corpus, solve it with
# --trace debug, and require a valid non-empty --metrics-json report
# (mirrors the "Observability smoke" CI step).
smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p comparesets-cli -- generate \
        --category cellphone --products 40 --seed 7 --out "$tmp/corpus.json"
    cargo run --release -p comparesets-cli -- select \
        --corpus "$tmp/corpus.json" --target 0 --m 3 \
        --trace debug --metrics-json "$tmp/metrics.json"
    test -s "$tmp/metrics.json"
    grep -q 'comparesets-metrics/v1' "$tmp/metrics.json"
    grep -q '"nomp_pursuits":' "$tmp/metrics.json"
    echo "smoke ok: $(cat "$tmp/metrics.json")"

# Refresh the performance baseline (updates BENCH_parallel_solver.json,
# see PERFORMANCE.md).
bench-baseline:
    cargo bench -p comparesets-bench --bench parallel_solver
