# Local equivalents of the CI gates (.github/workflows/ci.yml).

# Run every CI gate in order.
ci: fmt-check clippy build test doctest doc smoke resume-smoke serve-smoke stream-smoke graph-smoke chaos-smoke sparse-smoke bench-smoke

fmt:
    cargo fmt

fmt-check:
    cargo fmt --check

# -D warnings also enforces the workspace lints (clippy::unwrap_used /
# expect_used) that linalg and core opt into: library code on the solve
# path must return typed errors, never unwrap.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

build:
    cargo build --workspace --release

test:
    cargo test --workspace -q

doctest:
    cargo test --workspace --doc -q

# Rustdoc must build warnings-clean (broken intra-doc links, missing
# docs on #![warn(missing_docs)] crates).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# End-to-end observability smoke: generate a small corpus, solve it with
# --trace debug, and require a valid non-empty --metrics-json report
# (mirrors the "Observability smoke" CI step).
smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p comparesets-cli -- generate \
        --category cellphone --products 40 --seed 7 --out "$tmp/corpus.json"
    cargo run --release -p comparesets-cli -- select \
        --corpus "$tmp/corpus.json" --target 0 --m 3 \
        --trace debug --metrics-json "$tmp/metrics.json"
    test -s "$tmp/metrics.json"
    grep -q 'comparesets-metrics/v8' "$tmp/metrics.json"
    grep -q '"nomp_pursuits":' "$tmp/metrics.json"
    grep -q '"cancellation_checks":' "$tmp/metrics.json"
    grep -q '"io_retries":' "$tmp/metrics.json"
    grep -q '"warm_start_hits":' "$tmp/metrics.json"
    echo "smoke ok: $(cat "$tmp/metrics.json")"

# Deadline + resume smoke: start the suite with an unmeetable --timeout,
# require the classified deadline exit code (6) and a checkpoint on disk,
# then resume to completion and diff against an uninterrupted run
# (mirrors the "Resume smoke" CI step).
resume-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    run() { cargo run --release -q -p comparesets-cli -- "$@"; }
    rc=0
    run eval --config tiny --experiments table2,table3 \
        --checkpoint-dir "$tmp/ckpt" --timeout 0.2 \
        --out "$tmp/partial.txt" || rc=$?
    test "$rc" -eq 6
    test -s "$tmp/ckpt/suite-checkpoint.json"
    run eval --config tiny --experiments table2,table3 \
        --checkpoint-dir "$tmp/ckpt" --resume true --out "$tmp/resumed.txt"
    run eval --config tiny --experiments table2,table3 --out "$tmp/full.txt"
    cmp "$tmp/resumed.txt" "$tmp/full.txt"
    echo "resume smoke ok"

# Serving smoke: generate a corpus, start `comparesets serve` on an
# ephemeral port, parse the announced address, drive it with the example
# client (ping, solve, cached repeat, metrics, shutdown), and require
# the serving counters in the --metrics-json report the server writes on
# exit (mirrors the "Serve smoke" CI step).
serve-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p comparesets-cli -- generate \
        --category cellphone --products 40 --seed 7 --out "$tmp/corpus.json"
    cargo build --release -p comparesets-serve --example client
    cargo run --release -p comparesets-cli -- serve \
        --corpus "$tmp/corpus.json" --addr 127.0.0.1:0 \
        --metrics-json "$tmp/metrics.json" > "$tmp/serve.out" &
    server=$!
    addr=""
    for _ in $(seq 100); do
        addr=$(sed -n 's/^serving on //p' "$tmp/serve.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    test -n "$addr"
    cargo run --release -p comparesets-serve --example client -- "$addr" 0
    wait "$server"
    grep -q 'served 5 request(s), 0 degraded' "$tmp/serve.out"
    grep -q '"serve_requests":5' "$tmp/metrics.json"
    grep -q '"serve_full_hits":1' "$tmp/metrics.json"
    echo "serve smoke ok"

# Streaming smoke: serve durably (--data-dir), stream ingest events with
# the example driver, SIGKILL the server (no cleanup runs), smear garbage
# over the WAL tail, then require `recover` to report the exact durable
# prefix and a restarted server to keep serving and appending from it
# (mirrors the "Stream smoke" CI step).
stream-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p comparesets-cli -- generate \
        --category cellphone --products 40 --seed 7 --out "$tmp/corpus.json"
    cargo build --release -p comparesets-serve --example stream
    cargo run --release -p comparesets-cli -- serve \
        --corpus "$tmp/corpus.json" --addr 127.0.0.1:0 \
        --data-dir "$tmp/data" > "$tmp/serve.out" &
    server=$!
    addr=""
    for _ in $(seq 100); do
        addr=$(sed -n 's/^serving on //p' "$tmp/serve.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    test -n "$addr"
    cargo run --release -p comparesets-serve --example stream -- "$addr" 6 0
    kill -9 "$server"
    wait "$server" || true
    printf 'torn garbage' >> "$tmp/data/corpus/wal.log"
    cargo run --release -p comparesets-cli -- recover \
        --data-dir "$tmp/data" > "$tmp/recover.out"
    grep -q 'replayed 6 event(s)' "$tmp/recover.out"
    grep -q 'dropped 12 torn byte(s)' "$tmp/recover.out"
    cargo run --release -p comparesets-cli -- serve \
        --corpus "$tmp/corpus.json" --addr 127.0.0.1:0 \
        --data-dir "$tmp/data" --metrics-json "$tmp/metrics.json" \
        > "$tmp/serve2.out" &
    server=$!
    addr=""
    for _ in $(seq 100); do
        addr=$(sed -n 's/^serving on //p' "$tmp/serve2.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    test -n "$addr"
    cargo run --release -p comparesets-serve --example stream -- \
        "$addr" 2 0 shutdown > "$tmp/stream2.out"
    wait "$server"
    grep -q 'last seq 8' "$tmp/stream2.out"
    grep -q '"recovery_replayed_records":6' "$tmp/metrics.json"
    grep -q '"wal_appends":2' "$tmp/metrics.json"
    grep -q '"wal_fsyncs":2' "$tmp/metrics.json"
    echo "stream smoke ok"

# Graph solver smoke: one-sample run of the TargetHkS scaling bench
# (smoke mode never rewrites BENCH_targethks.json), then an end-to-end
# parallel exact narrowing through the CLI requiring nonzero v6
# branch-and-bound counters in the metrics report (mirrors the
# "Graph smoke" CI step).
graph-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    COMPARESETS_BENCH_SMOKE=1 cargo bench -p comparesets-bench --bench targethks_scaling
    cargo run --release -p comparesets-cli -- generate \
        --category cellphone --products 40 --seed 7 --out "$tmp/corpus.json"
    cargo run --release -p comparesets-cli -- narrow \
        --corpus "$tmp/corpus.json" --target 2 --k 3 --method exact \
        --threads 4 --metrics-json "$tmp/metrics.json"
    grep -q '"bnb_nodes":' "$tmp/metrics.json"
    ! grep -q '"bnb_nodes":0' "$tmp/metrics.json"
    ! grep -q '"bnb_steals":0' "$tmp/metrics.json"
    echo "graph smoke ok"

# Chaos smoke: 1000 seeded fault schedules against the durable store
# (short writes, failed fsyncs, disk full, bit flips, crashes — every
# acknowledged event must recover intact), then a SIGTERM drain drill:
# an in-flight slow solve must be answered (deadline-clamped), the
# server must exit 0, and a recover must report zero replayed events
# (the final snapshot covered the WAL). Fixed seeds, well under 60s
# (mirrors the "Chaos smoke" CI step).
chaos-smoke:
    #!/usr/bin/env bash
    set -euo pipefail
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    cargo run --release -p comparesets-cli -- chaos \
        --schedules 1000 --seed 0 --dir "$tmp/chaos" > "$tmp/chaos.out"
    grep -q '1000 schedule(s) clean' "$tmp/chaos.out"
    cargo run --release -p comparesets-cli -- generate \
        --category toy --products 40 --seed 9 --out "$tmp/corpus.json"
    cargo run --release -p comparesets-cli -- serve \
        --corpus "$tmp/corpus.json" --addr 127.0.0.1:0 \
        --data-dir "$tmp/data" --drain-deadline-ms 1000 \
        --metrics-json "$tmp/metrics.json" > "$tmp/serve.out" &
    server=$!
    addr=""
    for _ in $(seq 100); do
        addr=$(sed -n 's/^serving on //p' "$tmp/serve.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    test -n "$addr"
    cargo run --release -p comparesets-serve --example stream -- "$addr" 3 0
    kill -TERM "$server"
    wait "$server"
    grep -q '"drain_initiated":1' "$tmp/metrics.json"
    cargo run --release -p comparesets-cli -- recover \
        --data-dir "$tmp/data" > "$tmp/recover.out"
    grep -q 'replayed 0 event(s)' "$tmp/recover.out"
    grep -q 'dropped 0 torn byte(s)' "$tmp/recover.out"
    echo "chaos smoke ok"

# Sparse-kernel smoke: one-sample run of the dense-vs-CSC bench bodies
# (the regression_engine/sparse/* family behind BENCH_sparse.json).
# Smoke mode never rewrites the committed baseline; the >=2x acceptance
# on it is a test in crates/bench/tests/schema.rs (mirrors the "Sparse
# smoke" CI step).
sparse-smoke:
    COMPARESETS_BENCH_SMOKE=1 cargo bench -p comparesets-bench --bench nomp_sparse

# Refresh the performance baselines (updates BENCH_parallel_solver.json,
# BENCH_serve.json, BENCH_sparse.json, BENCH_stream.json, and
# BENCH_targethks.json, see PERFORMANCE.md).
bench-baseline:
    cargo bench -p comparesets-bench --bench parallel_solver
    cargo bench -p comparesets-bench --bench nomp_sparse
    cargo bench -p comparesets-bench --bench serve
    cargo bench -p comparesets-bench --bench stream
    cargo bench -p comparesets-bench --bench targethks_scaling

# One-sample, one-iteration run of every bench group: proves each bench
# body executes end-to-end without paying measurement-grade runtimes.
# COMPARESETS_BENCH_SMOKE also keeps the committed baseline
# (BENCH_parallel_solver.json) untouched.
bench-smoke:
    COMPARESETS_BENCH_SMOKE=1 cargo bench -p comparesets-bench
