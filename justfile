# Local equivalents of the CI gates (.github/workflows/ci.yml).

# Run every CI gate in order.
ci: fmt-check clippy build test doctest

fmt:
    cargo fmt

fmt-check:
    cargo fmt --check

# -D warnings also enforces the workspace lints (clippy::unwrap_used /
# expect_used) that linalg and core opt into: library code on the solve
# path must return typed errors, never unwrap.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

build:
    cargo build --workspace --release

test:
    cargo test --workspace -q

doctest:
    cargo test --workspace --doc -q

# Refresh the performance baseline (updates BENCH_parallel_solver.json,
# see PERFORMANCE.md).
bench-baseline:
    cargo bench -p comparesets-bench --bench parallel_solver
