//! Future-work extension (§4.2.3): drive CompaReSetS with *learned*
//! aspect-level preference vectors from an EFM-style model instead of the
//! empirical opinion distribution.
//!
//! The EFM-lite model factorises user-attention and item-quality matrices
//! with shared aspect factors; its reconstructed item-quality rows give a
//! dense, denoised τ for every item — including aspects the item's own
//! reviews barely mention but similar items discuss.
//!
//! ```text
//! cargo run --release --example learned_targets
//! ```

use comparesets::core::{
    item_objective, solve_comparesets, InstanceContext, Item, OpinionScheme, SelectParams,
};
use comparesets::data::CategoryPreset;
use comparesets::efm::{EfmConfig, EfmModel};

fn main() {
    let dataset = CategoryPreset::Cellphone.config(150, 77).generate();

    // 1. Train the explicit factor model on the whole corpus.
    let model = EfmModel::train(&dataset, EfmConfig::default());
    println!(
        "EFM-lite trained: rank {}, reconstruction RMSE {:.3} (1..5 scale)",
        8,
        model.train_rmse()
    );

    // 2. Pick an instance and build two contexts: empirical targets
    //    (the paper's default) and learned targets (the extension).
    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 4)
        .unwrap()
        .truncated(3);
    let empirical = InstanceContext::build(&dataset, &instance, OpinionScheme::UnaryScale);

    let items: Vec<Item> = (0..empirical.num_items())
        .map(|i| empirical.item(i).clone())
        .collect();
    let taus: Vec<Vec<f64>> = items
        .iter()
        .map(|item| model.learned_tau(item.product.0 as usize))
        .collect();
    let gamma = empirical.gamma().to_vec();
    let learned = InstanceContext::with_targets(
        dataset.num_aspects(),
        items,
        OpinionScheme::UnaryScale,
        taus,
        gamma,
    );

    // 3. Solve both and compare what gets selected.
    let params = SelectParams {
        m: 3,
        lambda: 1.0,
        mu: 0.0,
    };
    let sel_emp = solve_comparesets(&empirical, &params);
    let sel_lrn = solve_comparesets(&learned, &params);

    println!("\nTop predicted aspects for the target item:");
    let target_product = empirical.item(0).product.0 as usize;
    for a in model.top_aspects_for_item(target_product, 5) {
        println!(
            "  {:<14} predicted quality {:.2}",
            dataset.aspects[a],
            model.predict_quality(target_product, a)
        );
    }

    for (label, ctx, sels) in [
        ("empirical targets", &empirical, &sel_emp),
        ("learned targets", &learned, &sel_lrn),
    ] {
        println!("\n=== {label} ===");
        for (i, sel) in sels.iter().enumerate() {
            let cost = item_objective(ctx, i, sel, params.lambda);
            println!(
                "item {i} (product #{}): reviews {:?}, Eq.3 cost {cost:.4}",
                ctx.item(i).product.0,
                sel.indices
            );
        }
    }
    let same = sel_emp == sel_lrn;
    println!(
        "\nselections {}: learned targets {} the picks",
        if same { "identical" } else { "differ" },
        if same { "confirm" } else { "reshape" }
    );
}
