//! End-to-end from *raw text*: discover aspects, annotate reviews with
//! the frequency-based extractor (the §4.1.1 substitute for Microsoft
//! Concepts / Sentires), build an instance by hand, and run CompaReSetS+.
//!
//! ```text
//! cargo run --release --example aspect_extraction
//! ```

use comparesets::core::{
    solve_comparesets_plus, InstanceContext, Item, OpinionScheme, SelectParams,
};
use comparesets::data::Polarity;
use comparesets::text::{AspectExtractor, Sentiment};

/// Three fictional earbud products with hand-written reviews.
fn products() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "AcmeBuds Pro",
            vec![
                "The battery is excellent and lasts two days. The case feels solid.",
                "Terrible battery after the last update. Sound is still great though.",
                "Great sound and a comfortable fit. The case is nice and small.",
                "The microphone is poor on calls, but the battery is good.",
                "Sound quality is amazing for the price.",
            ],
        ),
        (
            "SoundCore Mini",
            vec![
                "Battery life is good, about a day of listening.",
                "The case is flimsy and the hinge broke in a week.",
                "Great sound, weak battery. You cannot have everything.",
                "The microphone is excellent for meetings.",
            ],
        ),
        (
            "EchoPods Lite",
            vec![
                "Sound is terrible, tinny and harsh at any volume.",
                "The battery is great and the fit is comfortable.",
                "Nice case, mediocre sound, good battery.",
            ],
        ),
    ]
}

fn main() {
    let catalog = products();

    // 1. Discover the aspect vocabulary from the whole corpus.
    let corpus: Vec<&str> = catalog
        .iter()
        .flat_map(|(_, rs)| rs.iter().copied())
        .collect();
    let extractor = AspectExtractor::discover(corpus.iter().copied(), 6, 2);
    println!("discovered aspects: {:?}\n", extractor.vocabulary());

    // 2. Annotate every review and build solver items.
    let items: Vec<Item> = catalog
        .iter()
        .enumerate()
        .map(|(pi, (_, reviews))| {
            let annotated = reviews
                .iter()
                .enumerate()
                .map(|(ri, text)| {
                    let mentions: Vec<(usize, Polarity)> = extractor
                        .extract(text)
                        .into_iter()
                        .filter_map(|op| {
                            let aspect = extractor.aspect_index(&op.aspect)?;
                            let polarity = match op.sentiment {
                                Some(Sentiment::Positive) => Polarity::Positive,
                                Some(Sentiment::Negative) => Polarity::Negative,
                                None => Polarity::Neutral,
                            };
                            Some((aspect, polarity))
                        })
                        .collect();
                    (
                        comparesets::data::ReviewId((pi * 100 + ri) as u32),
                        mentions,
                    )
                })
                .collect();
            Item::from_mentions(comparesets::data::ProductId(pi as u32), annotated)
        })
        .collect();

    // 3. Solve CompaReSetS+ with m = 2 over the extracted annotations.
    let ctx =
        InstanceContext::from_items(extractor.vocabulary().len(), items, OpinionScheme::Binary);
    let params = SelectParams {
        m: 2,
        lambda: 1.0,
        mu: 0.5,
    };
    let selections = solve_comparesets_plus(&ctx, &params);

    for (pi, (name, reviews)) in catalog.iter().enumerate() {
        println!("{name}:");
        for &r in &selections[pi].indices {
            println!("  -> {}", reviews[r]);
        }
    }
    println!(
        "\nThe selected reviews share aspects across products \
         (battery/sound/case), enabling direct comparison."
    );
}
