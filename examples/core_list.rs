//! Core-list narrowing: TargetHkS exact vs. greedy vs. the baselines
//! (§3 and Table 5 of the paper), on the worked Figure 4 example and on
//! a generated instance.
//!
//! ```text
//! cargo run --release --example core_list
//! ```

use comparesets::core::{solve_comparesets_plus, InstanceContext, OpinionScheme, SelectParams};
use comparesets::data::CategoryPreset;
use comparesets::graph::{
    solve_exact, solve_greedy, solve_hks, solve_random_k, solve_top_k_similarity, ExactOptions,
    SimilarityGraph,
};

fn main() {
    figure4_demo();
    corpus_demo();
}

/// The paper's Figure 4 property: the heaviest 3-subgraph overall need
/// not contain the target, so TargetHkS and HkS disagree.
fn figure4_demo() {
    let n = 6;
    let mut w = vec![0.0; n * n];
    let mut set = |i: usize, j: usize, v: f64| {
        w[i * n + j] = v;
        w[j * n + i] = v;
    };
    set(1, 4, 9.0);
    set(1, 5, 8.5);
    set(4, 5, 9.0); // global optimum {p2,p5,p6}
    set(0, 3, 9.0);
    set(0, 5, 8.4);
    set(3, 5, 8.0); // target-anchored optimum {p1,p4,p6}
    set(0, 1, 1.0);
    set(0, 2, 2.0);
    set(0, 4, 1.5);
    set(1, 2, 2.0);
    set(1, 3, 1.0);
    set(2, 3, 2.5);
    set(2, 4, 1.0);
    set(2, 5, 0.5);
    set(3, 4, 1.0);
    let g = SimilarityGraph::from_weights(n, w);

    println!("=== Figure 4 demo (6 items, k = 3) ===");
    let target = solve_exact(&g, 0, 3, &ExactOptions::default());
    println!(
        "TargetHkS (must include p1): {:?}  weight {:.1}",
        pretty(&target.vertices),
        target.weight
    );
    let hks = solve_hks(&g, 3, &ExactOptions::default());
    println!(
        "HkS (any 3 items):           {:?}  weight {:.1}",
        pretty(&hks.vertices),
        hks.weight
    );
    assert!(hks.weight > target.weight);
    println!("The globally heaviest triangle drops the target item — exactly the paper's point.\n");
}

fn pretty(vertices: &[usize]) -> Vec<String> {
    vertices.iter().map(|v| format!("p{}", v + 1)).collect()
}

/// End-to-end narrowing on a generated Toy instance.
fn corpus_demo() {
    let dataset = CategoryPreset::Toy.config(200, 11).generate();
    let instance = dataset
        .instances()
        .into_iter()
        .max_by_key(|i| i.len())
        .unwrap()
        .truncated(10);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    let params = SelectParams::default();
    let selections = solve_comparesets_plus(&ctx, &params);
    let graph = SimilarityGraph::from_selections(&ctx, &selections, params.lambda, params.mu);

    println!(
        "=== Corpus demo: narrowing {} candidates to k = 3 ===",
        ctx.num_items() - 1
    );
    let k = 3;
    let exact = solve_exact(&graph, 0, k, &ExactOptions::default());
    let greedy = solve_greedy(&graph, 0, k);
    let topk = solve_top_k_similarity(&graph, 0, k);
    let random = solve_random_k(&graph, 0, k, 5);
    println!("{:<18} {:>10}  items", "method", "weight");
    for (name, sol) in [
        ("TargetHkS exact", exact.vertices.clone()),
        ("TargetHkS greedy", greedy),
        ("Top-k similarity", topk),
        ("Random", random),
    ] {
        println!(
            "{:<18} {:>10.3}  {:?}",
            name,
            graph.subgraph_weight(&sol),
            sol
        );
    }
    println!("\nCore list product titles:");
    for &i in &exact.vertices {
        println!("  - {}", dataset.product(ctx.item(i).product).title);
    }
}
