//! Opinion definitions beyond positive/negative (§4.2.3, Table 4):
//! run the same selection under binary, 3-polarity, and unary-scale
//! opinion vectors and compare the resulting vectors side by side.
//!
//! ```text
//! cargo run --release --example opinion_schemes
//! ```

use comparesets::core::{solve_comparesets, InstanceContext, OpinionScheme, SelectParams};
use comparesets::data::CategoryPreset;

fn main() {
    let dataset = CategoryPreset::Clothing.config(120, 33).generate();
    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 4)
        .unwrap()
        .truncated(3);
    let params = SelectParams::default();

    for scheme in OpinionScheme::ALL {
        let ctx = InstanceContext::build(&dataset, &instance, scheme);
        let selections = solve_comparesets(&ctx, &params);
        println!("=== scheme: {} ===", scheme.name());
        println!(
            "opinion-vector dimension: {} (z = {})",
            ctx.space().opinion_dim(),
            ctx.space().num_aspects()
        );
        let item = ctx.item(0);
        let pi = ctx.space().pi(item, &selections[0].indices);
        let nonzero: Vec<(usize, f64)> = pi
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > 0.0)
            .map(|(i, v)| (i, (*v * 1000.0).round() / 1000.0))
            .collect();
        println!(
            "target item pi(S) non-zeros ({} of {} dims): {:?}",
            nonzero.len(),
            pi.len(),
            nonzero
        );
        // Show the aspect names behind the first few slots.
        if let Some(&(slot, _)) = nonzero.first() {
            let aspect_idx = match scheme {
                OpinionScheme::Binary => slot / 2,
                OpinionScheme::ThreePolarity => slot / 3,
                OpinionScheme::UnaryScale => slot,
            };
            println!(
                "first non-zero slot {} corresponds to aspect {:?}",
                slot, dataset.aspects[aspect_idx]
            );
        }
        println!(
            "selected reviews for the target item: {:?}\n",
            selections[0].indices
        );
    }
}
