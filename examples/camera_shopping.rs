//! Camera-shopping scenario: the paper's motivating use case (Figure 1).
//!
//! A shopper views a target camera with a long "compare with similar
//! items" strip. We run all five selection algorithms, score how
//! comparable their review picks are (ROUGE-L between items, as in
//! Table 3), and show why the synchronized CompaReSetS+ wins.
//!
//! ```text
//! cargo run --release --example camera_shopping
//! ```

use comparesets::core::{solve, Algorithm, InstanceContext, OpinionScheme, SelectParams};
use comparesets::data::CategoryPreset;
use comparesets::text::rouge_l;

fn main() {
    let dataset = CategoryPreset::Cellphone.config(200, 2024).generate();

    // Score one algorithm on one instance: mean pairwise ROUGE-L between
    // the selected reviews of the target and of each comparative item
    // (the paper's Table 3a measure).
    let score = |ctx: &InstanceContext, selections: &[comparesets::core::Selection]| -> f64 {
        let mut total = 0.0;
        let mut count = 0;
        for j in 1..ctx.num_items() {
            for &a in &selections[0].indices {
                for &b in &selections[j].indices {
                    let ta = &dataset.review(ctx.item(0).review_ids[a]).text;
                    let tb = &dataset.review(ctx.item(j).review_ids[b]).text;
                    total += rouge_l(ta, tb).f1;
                    count += 1;
                }
            }
        }
        100.0 * total / count.max(1) as f64
    };

    // Average the scores over a batch of "product pages" — a single page
    // is far too noisy to separate the methods, exactly like the paper
    // averages over thousands of target products.
    let pages: Vec<InstanceContext> = dataset
        .instances()
        .into_iter()
        .filter(|i| i.len() >= 5)
        .take(30)
        .map(|i| InstanceContext::build(&dataset, &i.truncated(8), OpinionScheme::Binary))
        .collect();
    println!("Scoring {} product pages (m = 3)\n", pages.len());

    let params = SelectParams::default();
    println!("{:<22} {:>12}", "Algorithm", "ROUGE-L x100");
    println!("{}", "-".repeat(36));
    let mut best: Option<(f64, Algorithm)> = None;
    for alg in Algorithm::ALL {
        let mean: f64 = pages
            .iter()
            .enumerate()
            .map(|(i, ctx)| score(ctx, &solve(ctx, alg, &params, 99 + i as u64)))
            .sum::<f64>()
            / pages.len() as f64;
        println!("{:<22} {:>12.2}", alg.name(), mean);
        if best.is_none_or(|(b, _)| mean > b) {
            best = Some((mean, alg));
        }
    }
    let (_, winner) = best.unwrap();
    println!(
        "\nMost comparable review sets on average: {}",
        winner.name()
    );

    // Show the winner's picks on the busiest product page.
    let ctx = pages
        .iter()
        .max_by_key(|c| c.num_items())
        .expect("non-empty page batch");
    println!(
        "\nTarget: {} ({} candidates)",
        dataset.product(ctx.item(0).product).title,
        ctx.num_items() - 1
    );
    let selections = solve(ctx, winner, &params, 99);
    for i in [0usize, 1] {
        println!("\n{}:", dataset.product(ctx.item(i).product).title);
        for &r in &selections[i].indices {
            let review = dataset.review(ctx.item(i).review_ids[r]);
            println!("  {}* {}", review.rating, review.text);
        }
    }
}
