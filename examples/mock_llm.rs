//! §4.6.2 — why "just ask an LLM" does not solve comparative review
//! selection: the combinatorial-explosion arithmetic from the paper,
//! computed on a generated corpus.
//!
//! ```text
//! cargo run --release --example mock_llm
//! ```

use comparesets::data::CategoryPreset;

/// log10 of C(n, k) via log-gamma, to avoid overflow.
fn log10_choose(n: u64, k: u64) -> f64 {
    use comparesets::stats::special::ln_gamma;
    if k > n {
        return f64::NEG_INFINITY;
    }
    (ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0))
        / std::f64::consts::LN_10
}

fn main() {
    let dataset = CategoryPreset::Cellphone.config(240, 1).generate();
    let instances = dataset.instances();
    let avg_items = instances
        .iter()
        .map(|i| i.comparatives().len() as f64)
        .sum::<f64>()
        / instances.len() as f64;
    let avg_reviews = dataset
        .products
        .iter()
        .filter(|p| !p.reviews.is_empty())
        .map(|p| p.reviews.len() as f64)
        .sum::<f64>()
        / dataset
            .products
            .iter()
            .filter(|p| !p.reviews.is_empty())
            .count() as f64;

    println!("Corpus averages (Cellphone-style synthetic data):");
    println!("  comparative items per instance: {avg_items:.1}");
    println!("  reviews per item:               {avg_reviews:.1}\n");

    let n_items = avg_items.round() as u64;
    let n_reviews = avg_reviews.round() as u64;
    let m = 3u64;

    // The paper's arithmetic: picking one review per item for pairwise
    // comparison needs ~reviews^items LLM comparisons...
    let single = n_items as f64 * (n_reviews as f64).log10();
    println!(
        "Naive LLM protocol, one review per item: {n_reviews}^{n_items} ≈ 10^{single:.1} comparisons"
    );

    // ...and choosing m-subsets per item explodes to C(reviews, m)^items.
    let subsets = log10_choose(n_reviews, m);
    let total = n_items as f64 * subsets;
    println!(
        "Choosing {m}-review subsets: C({n_reviews},{m})^{n_items} ≈ 10^{total:.1} combinations"
    );

    println!(
        "\nCompaReSetS+ instead solves each instance with \
         O((m^3 + |R|·m)·n) integer regressions — milliseconds per instance \
         (see `cargo run -p comparesets-eval --bin fig7`)."
    );
    println!(
        "\nThe paper also documents LLM hallucination: generated 'reviews' \
         for real products that no user ever wrote (Figure 12). A selection \
         method that only *picks existing reviews* cannot hallucinate —\
         authenticity is structural, not probabilistic."
    );
}
