//! The full consumer-facing view: select comparative reviews, narrow to a
//! core list, render the Figure-1-style aspect × item comparison table,
//! and compress each product's selected reviews into a two-sentence
//! extractive summary (§4.6.1's future-work suggestion).
//!
//! ```text
//! cargo run --release --example comparison_view
//! ```

use comparesets::core::{
    solve_comparesets_plus, ComparisonTable, InstanceContext, OpinionScheme, SelectParams,
};
use comparesets::data::CategoryPreset;
use comparesets::graph::{solve_exact, ExactOptions, SimilarityGraph};
use comparesets::text::{summarize, SummaryConfig};

fn main() {
    let dataset = CategoryPreset::Cellphone.config(150, 8).generate();
    let instance = dataset
        .instances()
        .into_iter()
        .max_by_key(|i| i.len())
        .unwrap()
        .truncated(8);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    let params = SelectParams::default();

    // Select + narrow.
    let selections = solve_comparesets_plus(&ctx, &params);
    let graph = SimilarityGraph::from_selections(&ctx, &selections, params.lambda, params.mu);
    let core = solve_exact(&graph, 0, 3, &ExactOptions::default()).vertices;

    // Figure-1-style comparison grid over the core items.
    let table = ComparisonTable::build(&ctx, &selections, Some(&core));
    println!(
        "Compare with similar items — {} of {} candidates kept\n",
        core.len() - 1,
        ctx.num_items() - 1
    );
    println!("{}", table.render(&dataset.aspects));
    println!(
        "aspects covered by every core item: {:?}\n",
        table
            .common_aspects()
            .iter()
            .map(|&a| dataset.aspects[a].as_str())
            .collect::<Vec<_>>()
    );

    // Per-product two-sentence summaries of the selected reviews.
    for &i in &core {
        let item = ctx.item(i);
        let texts: Vec<&str> = selections[i]
            .indices
            .iter()
            .map(|&r| dataset.review(item.review_ids[r]).text.as_str())
            .collect();
        let summary = summarize(&texts, SummaryConfig::default());
        println!("{}:", dataset.product(item.product).title);
        for s in summary {
            println!("  > {s}");
        }
    }
}
