//! Quickstart: the full CompaReSetS pipeline in ~40 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use comparesets::core::{solve_comparesets_plus, InstanceContext, OpinionScheme, SelectParams};
use comparesets::data::CategoryPreset;
use comparesets::graph::{solve_greedy, SimilarityGraph};

fn main() {
    // 1. A corpus. Real deployments load their own reviews (see
    //    `comparesets::data::io`); here we generate a synthetic category.
    let dataset = CategoryPreset::Cellphone.config(120, 7).generate();
    println!(
        "corpus: {} products, {} reviews, {} aspects",
        dataset.products.len(),
        dataset.reviews.len(),
        dataset.num_aspects()
    );

    // 2. A comparison instance: one target product plus its "also bought"
    //    candidates.
    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 5)
        .expect("generated corpora always contain multi-item instances")
        .truncated(6);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    println!(
        "instance: target {:?} + {} comparative items",
        ctx.item(0).product,
        ctx.num_items() - 1
    );

    // 3. Select m = 3 comparative reviews per item (Problem 2 of the
    //    paper, solved with alternating Integer-Regression).
    let params = SelectParams::default(); // m = 3, lambda = 1, mu = 0.1
    let selections = solve_comparesets_plus(&ctx, &params);
    for (i, sel) in selections.iter().enumerate() {
        println!(
            "item {i}: selected {} of {} reviews -> {:?}",
            sel.len(),
            ctx.item(i).num_reviews(),
            sel.review_ids(ctx.item(i))
        );
    }

    // 4. Narrow the list to the 3 most mutually similar items (TargetHkS).
    let graph = SimilarityGraph::from_selections(&ctx, &selections, params.lambda, params.mu);
    let core_list = solve_greedy(&graph, 0, 3);
    println!("core comparison list (item indices, target first): {core_list:?}");
    for &i in &core_list {
        let title = &dataset.product(ctx.item(i).product).title;
        println!("  - {title}");
        for &r in &selections[i].indices {
            let review = dataset.review(ctx.item(i).review_ids[r]);
            println!("      {}* {}", review.rating, review.text);
        }
    }
}
