//! Offline stand-in for the `rayon` crate.
//!
//! Provides the parallel-iterator *API surface* this workspace uses, but
//! executes everything sequentially on the calling thread. `par_iter()`
//! and `into_par_iter()` simply hand back the corresponding standard
//! iterators, so every adapter (`map`, `enumerate`, `filter`, `collect`,
//! `for_each`, ...) is inherited from `std::iter::Iterator` with
//! identical, deterministic semantics.
//!
//! That makes the stand-in honest about this container (a single-CPU
//! box: real work-stealing would add overhead, not speed) while keeping
//! the code it compiles byte-for-byte source-compatible with real rayon,
//! so swapping the path dependency back to the registry crate re-enables
//! true parallelism with no code changes.

#![warn(missing_docs)]

/// Sequential stand-ins for rayon's prelude traits.
pub mod prelude {
    /// `.par_iter()` on shared slices/collections.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'data;
        /// Sequential "parallel" iterator over `&self`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `.par_iter_mut()` on mutable slices/collections.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The borrowed iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'data;
        /// Sequential "parallel" iterator over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The owning iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// Sequential "parallel" iterator consuming `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        type Item = &'data mut T;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Run two closures "in parallel" (sequentially here) and return both
/// results, mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of threads the "pool" uses — always 1 in this stand-in.
pub fn current_num_threads() -> usize {
    1
}

/// A configured thread pool. Sequential stand-in: `install` just runs the
/// closure on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.max(1)
    }
}

/// Error from building a thread pool (never produced by the stand-in).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a thread count (recorded, but execution stays sequential).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in the stand-in; fallible for API compatibility.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = xs.par_iter().map(|v| v * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let indexed: Vec<(usize, i32)> = xs.par_iter().enumerate().map(|(i, &v)| (i, v)).collect();
        assert_eq!(indexed[4], (4, 5));
    }

    #[test]
    fn pool_installs_and_joins() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let v = pool.install(|| 7);
        assert_eq!(v, 7);
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
