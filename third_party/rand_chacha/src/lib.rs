//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements [`ChaCha8Rng`] with a genuine ChaCha8 block function (the
//! same quarter-round core as RFC 8439, with 8 rounds and a 64-bit block
//! counter), so seeded streams have the statistical quality the synthetic
//! data generators rely on. Output word order is this crate's own — the
//! workspace only needs seed-determinism, not byte compatibility with
//! upstream `rand_chacha`.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic RNG backed by the ChaCha8 stream cipher.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// "expand 32-byte k" constants + key + counter + nonce.
    initial: [u32; 16],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Keystream words of the current block.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = self.initial;
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut initial = [0u32; 16];
        // "expand 32-byte k"
        initial[0] = 0x6170_7865;
        initial[1] = 0x3320_646e;
        initial[2] = 0x7962_2d32;
        initial[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            initial[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12–13 are the counter (set per block); 14–15 stay zero
        // (stream id, unused here).
        ChaCha8Rng {
            initial,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: bit balance over 4k words within 2%.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let ratio = ones as f64 / total as f64;
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }
}
