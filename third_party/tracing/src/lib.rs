//! Offline stand-in for `tracing`.
//!
//! Implements the API subset this workspace uses for its observability
//! layer: levelled event macros (`trace!` … `error!`, format-string form),
//! timed spans (`span!` with `key = value` fields, entered via an RAII
//! guard), and a single global [`Subscriber`] that receives formatted
//! events and span-close records.
//!
//! The upstream crate's dispatch machinery (per-callsite interest caches,
//! thread-local span stacks, `tracing-subscriber` layering) is replaced by
//! **one atomic max-level gate**: every macro first performs a single
//! relaxed load and an integer compare, and only formats its payload when
//! the level is enabled. With the gate at its default ([`Level`] `None`,
//! i.e. off) instrumented code pays one predictable branch per callsite —
//! nothing allocates, nothing formats, no clock is read. That is the
//! "zero-cost when disabled" guarantee ARCHITECTURE.md §7 leans on.
//!
//! Deviations from upstream (documented per third_party rules):
//!
//! * Filtering is controlled by [`set_max_level`] here rather than by the
//!   subscriber (upstream derives it from `tracing_subscriber` layers,
//!   which are not vendored). Swapping back to registry crates replaces
//!   the `comparesets-obs` init helper with `tracing_subscriber::fmt()`,
//!   not any solver code.
//! * Event macros accept the format-string form (`debug!("x = {x}")`)
//!   only; span macros accept `key = value` fields and render them with
//!   `{:?}`. This is the subset first-party code uses.
//! * Spans do not nest contextually — a span records its own busy time on
//!   guard drop and reports it to the subscriber, nothing more.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Verbosity level of an event or span.
///
/// Ordering matches upstream `tracing`: `ERROR` is the least verbose
/// (smallest), `TRACE` the most verbose (largest), so `level <= max`
/// decides whether a callsite fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Recoverable degradations (fallback ladders, cap hits).
    Warn = 2,
    /// Coarse progress (one line per experiment / command).
    Info = 3,
    /// Per-solve structure (one line per item regression).
    Debug = 4,
    /// Hot-path detail (pursuit iterations, refits).
    Trace = 5,
}

impl Level {
    /// Upstream-compatible associated constants.
    pub const ERROR: Level = Level::Error;
    /// See [`Level::ERROR`].
    pub const WARN: Level = Level::Warn;
    /// See [`Level::ERROR`].
    pub const INFO: Level = Level::Info;
    /// See [`Level::ERROR`].
    pub const DEBUG: Level = Level::Debug;
    /// See [`Level::ERROR`].
    pub const TRACE: Level = Level::Trace;

    /// Name as upstream renders it (upper case).
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing a [`Level`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError {
    input: String,
}

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid level {:?} (expected trace, debug, info, warn, error, or 1-5)",
            self.input
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    /// Accepts the level names case-insensitively and the numeric forms
    /// `1` (error) … `5` (trace), mirroring upstream.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "trace" | "5" => Ok(Level::Trace),
            "debug" | "4" => Ok(Level::Debug),
            "info" | "3" => Ok(Level::Info),
            "warn" | "warning" | "2" => Ok(Level::Warn),
            "error" | "1" => Ok(Level::Error),
            _ => Err(ParseLevelError {
                input: s.to_string(),
            }),
        }
    }
}

/// The global gate: 0 = everything off, else the enabled `Level as usize`.
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(0);

/// Set the global max level; `None` disables all instrumentation (the
/// default). Takes effect immediately on every thread.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as usize), Ordering::Relaxed);
}

/// The current global max level (`None` when instrumentation is off).
pub fn max_level() -> Option<Level> {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// One relaxed load + compare: the only cost a disabled callsite pays.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    (level as usize) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Receiver of formatted events and span-close records.
///
/// Simplified from upstream (no callsite registration, no span ids): the
/// stand-in formats at the callsite and hands finished text over.
pub trait Subscriber: Send + Sync {
    /// An event fired at `level` from `target` (the callsite's module path).
    fn event(&self, level: Level, target: &str, message: &str);

    /// A span guard dropped after being entered for `busy` wall time.
    /// `fields` is the pre-rendered ` key=value` list (possibly empty).
    fn span_close(&self, level: Level, target: &str, name: &str, fields: &str, busy: Duration);
}

static SUBSCRIBER: OnceLock<Box<dyn Subscriber>> = OnceLock::new();

/// Error returned by [`subscriber::set_global_default`] when a subscriber
/// was already installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetGlobalDefaultError;

impl fmt::Display for SetGlobalDefaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a global default subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalDefaultError {}

/// Global-subscriber installation, namespaced as upstream does.
pub mod subscriber {
    pub use super::SetGlobalDefaultError;

    /// Install the process-wide subscriber. Fails (harmlessly) when one is
    /// already installed — init helpers may be called repeatedly.
    ///
    /// # Errors
    /// [`SetGlobalDefaultError`] when a subscriber was already set.
    pub fn set_global_default(
        subscriber: impl super::Subscriber + 'static,
    ) -> Result<(), SetGlobalDefaultError> {
        super::SUBSCRIBER
            .set(Box::new(subscriber))
            .map_err(|_| SetGlobalDefaultError)
    }
}

/// Macro back end: format and deliver an event (callsite already checked
/// the gate, but re-checking keeps direct callers honest).
#[doc(hidden)]
pub fn dispatch_event(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if let Some(sub) = SUBSCRIBER.get() {
        sub.event(level, target, &args.to_string());
    }
}

/// Macro back end: deliver a span-close record.
#[doc(hidden)]
pub fn dispatch_span_close(level: Level, target: &str, name: &str, fields: &str, busy: Duration) {
    if let Some(sub) = SUBSCRIBER.get() {
        sub.span_close(level, target, name, fields, busy);
    }
}

/// A (possibly disabled) span. Created by [`span!`]; enter with
/// [`Span::enter`] to time a region — the guard reports the busy time to
/// the subscriber when dropped. A disabled span is a unit value: entering
/// and dropping it does nothing and reads no clock.
#[derive(Debug)]
pub struct Span {
    data: Option<SpanData>,
}

#[derive(Debug)]
struct SpanData {
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: String,
}

impl Span {
    /// An enabled span (the gate was already checked by the macro).
    #[doc(hidden)]
    pub fn new_enabled(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: String,
    ) -> Self {
        Span {
            data: Some(SpanData {
                level,
                target,
                name,
                fields,
            }),
        }
    }

    /// A span that records nothing.
    pub fn disabled() -> Self {
        Span { data: None }
    }

    /// Upstream-compatible alias for [`Span::disabled`].
    pub fn none() -> Self {
        Span::disabled()
    }

    /// True when this span will not record anything.
    pub fn is_disabled(&self) -> bool {
        self.data.is_none()
    }

    /// Enter the span: the returned guard reports wall time on drop.
    pub fn enter(&self) -> Entered<'_> {
        Entered {
            span: self,
            start: self.data.as_ref().map(|_| Instant::now()),
        }
    }
}

/// RAII guard returned by [`Span::enter`].
pub struct Entered<'a> {
    span: &'a Span,
    start: Option<Instant>,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        if let (Some(data), Some(start)) = (self.span.data.as_ref(), self.start) {
            dispatch_span_close(
                data.level,
                data.target,
                data.name,
                &data.fields,
                start.elapsed(),
            );
        }
    }
}

/// Fire an event at an explicit level: `event!(Level::DEBUG, "m = {m}")`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($arg:tt)+) => {{
        let __lvl: $crate::Level = $lvl;
        if $crate::level_enabled(__lvl) {
            $crate::dispatch_event(__lvl, ::core::module_path!(), ::core::format_args!($($arg)+));
        }
    }};
}

/// `event!` at [`Level::TRACE`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::TRACE, $($arg)+) };
}

/// `event!` at [`Level::DEBUG`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::DEBUG, $($arg)+) };
}

/// `event!` at [`Level::INFO`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::INFO, $($arg)+) };
}

/// `event!` at [`Level::WARN`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::WARN, $($arg)+) };
}

/// `event!` at [`Level::ERROR`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::ERROR, $($arg)+) };
}

/// Create a [`Span`]: `span!(Level::DEBUG, "nomp_pursuit", rows = m)`.
/// Field values are rendered with `{:?}` and only evaluated when the
/// level is enabled.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let __lvl: $crate::Level = $lvl;
        if $crate::level_enabled(__lvl) {
            #[allow(unused_mut)]
            let mut __fields = ::std::string::String::new();
            $(
                {
                    use ::core::fmt::Write as _;
                    let _ = ::core::write!(
                        __fields,
                        " {}={:?}",
                        ::core::stringify!($key),
                        $value
                    );
                }
            )*
            $crate::Span::new_enabled(__lvl, ::core::module_path!(), $name, __fields)
        } else {
            $crate::Span::disabled()
        }
    }};
}

/// `span!` at [`Level::TRACE`].
#[macro_export]
macro_rules! trace_span {
    ($($arg:tt)+) => { $crate::span!($crate::Level::TRACE, $($arg)+) };
}

/// `span!` at [`Level::DEBUG`].
#[macro_export]
macro_rules! debug_span {
    ($($arg:tt)+) => { $crate::span!($crate::Level::DEBUG, $($arg)+) };
}

/// `span!` at [`Level::INFO`].
#[macro_export]
macro_rules! info_span {
    ($($arg:tt)+) => { $crate::span!($crate::Level::INFO, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture {
        events: Mutex<Vec<(Level, String, String)>>,
        closes: Mutex<Vec<(Level, String, String)>>,
    }

    impl Subscriber for &'static Capture {
        fn event(&self, level: Level, target: &str, message: &str) {
            self.events
                .lock()
                .unwrap()
                .push((level, target.to_string(), message.to_string()));
        }

        fn span_close(
            &self,
            level: Level,
            _target: &str,
            name: &str,
            fields: &str,
            _busy: Duration,
        ) {
            self.closes
                .lock()
                .unwrap()
                .push((level, name.to_string(), fields.to_string()));
        }
    }

    #[test]
    fn level_parsing_ordering_and_display() {
        assert_eq!("debug".parse::<Level>().unwrap(), Level::DEBUG);
        assert_eq!("TRACE".parse::<Level>().unwrap(), Level::TRACE);
        assert_eq!("Warning".parse::<Level>().unwrap(), Level::WARN);
        assert_eq!("1".parse::<Level>().unwrap(), Level::ERROR);
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::ERROR < Level::TRACE);
        assert_eq!(Level::INFO.to_string(), "INFO");
    }

    /// The global gate and subscriber are process-wide, so every dispatch
    /// assertion lives in this single test to keep ordering deterministic.
    #[test]
    fn gate_controls_dispatch_and_spans_report_fields() {
        static CAPTURE: Capture = Capture {
            events: Mutex::new(Vec::new()),
            closes: Mutex::new(Vec::new()),
        };
        subscriber::set_global_default(&CAPTURE).unwrap();
        // A second install fails harmlessly.
        assert!(subscriber::set_global_default(&CAPTURE).is_err());

        // Default: everything off — nothing recorded, spans disabled.
        assert_eq!(max_level(), None);
        error!("dropped {}", 1);
        {
            let span = span!(Level::INFO, "off");
            assert!(span.is_disabled());
            let _g = span.enter();
        }
        assert!(CAPTURE.events.lock().unwrap().is_empty());
        assert!(CAPTURE.closes.lock().unwrap().is_empty());

        // Debug on: debug fires, trace stays gated.
        set_max_level(Some(Level::DEBUG));
        assert_eq!(max_level(), Some(Level::DEBUG));
        assert!(level_enabled(Level::ERROR));
        assert!(!level_enabled(Level::TRACE));
        debug!("m = {}", 3);
        trace!("gated {}", 4);
        {
            let span = span!(Level::DEBUG, "solve", items = 2, m = 3usize);
            assert!(!span.is_disabled());
            let _g = span.enter();
        }
        {
            let gated = span!(Level::TRACE, "gated_span");
            let _g = gated.enter();
        }

        let events = CAPTURE.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, Level::DEBUG);
        assert!(events[0].1.contains("tracing"));
        assert_eq!(events[0].2, "m = 3");
        let closes = CAPTURE.closes.lock().unwrap();
        assert_eq!(closes.len(), 1);
        assert_eq!(closes[0].1, "solve");
        assert_eq!(closes[0].2, " items=2 m=3");

        set_max_level(None);
    }
}
