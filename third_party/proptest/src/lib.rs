//! Offline stand-in for the `proptest` crate.
//!
//! Keeps the same authoring surface — `proptest! { fn prop(x in strat) }`,
//! `Strategy` combinators (`prop_map`, `prop_flat_map`, `boxed`),
//! `prop_oneof!`, `proptest::collection::vec`, `proptest::sample::select`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases` — but
//! replaces the value-tree machinery with direct deterministic sampling:
//! each test runs `cases` iterations with an RNG seeded from the test's
//! module path and case index, so failures reproduce exactly across runs.
//! There is no shrinking; a failing case panics with the sampled inputs
//! left to the assertion message.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test execution configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG used to sample strategies (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's identity and case index, so every run of
        /// the suite samples identical inputs.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Build from non-empty alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.index(self.0.len());
            self.0[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t; // full-width range
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                f64::from_bits(self.end.to_bits() - 1)
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Sampling a tuple of strategies by reference — used by the
    /// `proptest!` macro expansion to bind all arguments at once.
    pub trait SampleTuple {
        /// Tuple of generated values.
        type Values;
        /// Sample every component.
        fn sample_tuple(&self, rng: &mut TestRng) -> Self::Values;
    }

    macro_rules! impl_sample_tuple {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> SampleTuple for ($($s,)+) {
                type Values = ($($s::Value,)+);
                fn sample_tuple(&self, rng: &mut TestRng) -> Self::Values {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_sample_tuple! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable length specifications for [`fn@vec`].
    pub trait SizeRange {
        /// Inclusive (min, max) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of values from `elem` with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min_len: usize,
        max_len: usize,
    }

    /// Generate vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            elem,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max_len > self.min_len {
                self.min_len + rng.index(self.max_len - self.min_len + 1)
            } else {
                self.min_len
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly chosen clones of the given options.
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.index(self.0.len())].clone()
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $($strat,)* );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ( $($arg,)* ) = $crate::strategy::SampleTuple::sample_tuple(
                        &__strategies,
                        &mut __rng,
                    );
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=4).prop_flat_map(|n| (Just(n), 0usize..10).prop_map(move |(a, b)| (a * 2, b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 3usize..9,
            f in 0.0f64..2.5,
            xs in crate::collection::vec(1i32..=5, 2..6),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..2.5).contains(&f));
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(xs.iter().all(|v| (1..=5).contains(v)));
        }

        #[test]
        fn tuples_and_flat_map((a, b) in small_pair()) {
            prop_assert!(a % 2 == 0 && (2..=8).contains(&a));
            prop_assert!(b < 10);
        }

        #[test]
        fn oneof_and_select(
            word in crate::sample::select(vec!["alpha", "beta"]).prop_map(str::to_string),
            flag in prop_oneof![Just(true), Just(false)],
        ) {
            prop_assert!(word == "alpha" || word == "beta", "{}", word);
            let _ = flag;
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u32..100, 5);
        let a = strat.sample(&mut TestRng::deterministic("t", 3));
        let b = strat.sample(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }
}
