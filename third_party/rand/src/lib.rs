//! Offline stand-in for the `rand` crate (see `third_party/README.md`).
//!
//! This workspace vendors the *API subset it actually uses* so the build
//! needs no network access: [`RngCore`]/[`SeedableRng`] plumbing, the
//! [`Rng`] extension trait with `random_range` / `random_bool`, and
//! Fisher–Yates [`SliceRandom::shuffle`]. Distributions follow the
//! standard constructions (Lemire-style rejection sampling for integers,
//! 53-bit mantissa scaling for floats) and are fully deterministic for a
//! given seed, which is all the reproduction relies on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: uniform raw words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (the same
    /// construction `rand_core` documents for its default impl).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[low, high)`; `high_inclusive` widens to
    /// `[low, high]`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        high_inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty, $raw:ident),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                high_inclusive: bool,
            ) -> Self {
                assert!(
                    if high_inclusive { low <= high } else { low < high },
                    "empty sample range"
                );
                let span = (high as $wide).wrapping_sub(low as $wide) as $wide;
                let span = if high_inclusive { span + 1 } else { span };
                if span == 0 {
                    // Inclusive full-width range: any raw word works.
                    return rng.$raw() as $t;
                }
                // Lemire rejection sampling: unbiased and branch-light.
                let zone = <$wide>::MAX - (<$wide>::MAX - span + 1) % span;
                loop {
                    let v = rng.$raw() as $wide;
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, next_u64,
    u16 => u64, next_u64,
    u32 => u64, next_u64,
    u64 => u64, next_u64,
    usize => u64, next_u64,
    i8 => u64, next_u64,
    i16 => u64, next_u64,
    i32 => u64, next_u64,
    i64 => u64, next_u64,
    isize => u64, next_u64,
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        high_inclusive: bool,
    ) -> Self {
        assert!(
            low < high || (high_inclusive && low <= high),
            "empty sample range"
        );
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        if v >= high && !high_inclusive {
            // Guard against rounding up to the open bound.
            f64::from_bits(high.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        high_inclusive: bool,
    ) -> Self {
        f64::sample_range(rng, low as f64, high as f64, high_inclusive) as f32
    }
}

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.random_range(0..10)`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i, true);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len(), false)])
        }
    }
}

/// The traits most callers want in scope.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleUniform, SeedableRng, SliceRandom};
}

/// Re-export path compatibility with `rand::rngs`.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A crude LCG: enough to exercise the distribution helpers.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Echo([u8; 16]);
        impl RngCore for Echo {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                u64::from_le_bytes(self.0[..8].try_into().unwrap())
            }
        }
        impl SeedableRng for Echo {
            type Seed = [u8; 16];
            fn from_seed(seed: Self::Seed) -> Self {
                Echo(seed)
            }
        }
        let a = Echo::seed_from_u64(42).0;
        let b = Echo::seed_from_u64(42).0;
        let c = Echo::seed_from_u64(43).0;
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
