//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, this stand-in routes all
//! (de)serialisation through an owned [`Value`] tree: `Serialize`
//! produces a `Value`, `Deserialize` consumes one. Formats (here only
//! `serde_json`) render and parse `Value`s. That is a much smaller
//! surface that still supports everything this workspace derives:
//! named-field structs, `#[serde(transparent)]` newtypes, fieldless
//! enums, and the `rename` / `default` field attributes.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value, the interchange format between
/// `Serialize`/`Deserialize` impls and concrete formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map. Insertion order is preserved so struct fields render
    /// in declaration order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field in an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A required struct field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// A value had the wrong kind for the target type.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error::custom(format!(
            "invalid type: expected {expected}, found {}",
            got.kind()
        ))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialise into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a value.
    fn serialize(&self) -> Value;
}

/// Deserialise from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Build `Self` from a value.
    ///
    /// # Errors
    /// When the value's shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::invalid_type("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::invalid_type("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::deserialize(&Value::Int(4)).unwrap(), Some(4));
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(String::deserialize(&Value::Int(1)).is_err());
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn object_lookup_preserves_order() {
        let v = Value::Object(vec![
            ("b".into(), Value::Int(2)),
            ("a".into(), Value::Int(1)),
        ]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.as_object().unwrap()[0].0, "b");
        assert_eq!(v.get("zz"), None);
    }
}
