//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the value-tree `serde` stand-in, parsing the item's `TokenStream`
//! directly (no `syn`/`quote` — those aren't vendored). Supported shapes
//! are exactly what this workspace uses:
//!
//! * structs with named fields, honouring `#[serde(rename = "...")]` and
//!   `#[serde(default)]` on fields;
//! * single-field tuple structs (newtypes), with or without
//!   `#[serde(transparent)]` — both serialise as the inner value, which
//!   matches upstream serde's newtype behaviour;
//! * fieldless enums, serialised as the variant name string.
//!
//! Anything else (generics, multi-field tuple structs, data-carrying
//! enums) panics with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a named-field struct.
struct Field {
    /// Rust-side field name.
    ident: String,
    /// Wire key (`rename` attr or the field name).
    key: String,
    /// Whether `#[serde(default)]` was present.
    default: bool,
}

/// The shapes of item we can derive for.
enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// serde attributes collected while scanning an attribute list.
#[derive(Default)]
struct SerdeAttrs {
    rename: Option<String>,
    default: bool,
}

/// Parse the `(...)` group of a `#[serde(...)]` attribute.
fn parse_serde_attr(group: &proc_macro::Group, out: &mut SerdeAttrs) {
    let mut iter = group.stream().into_iter().peekable();
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                let has_eq = matches!(
                    iter.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '='
                );
                if has_eq {
                    iter.next(); // consume '='
                    let lit = match iter.next() {
                        Some(TokenTree::Literal(lit)) => lit.to_string(),
                        other => {
                            panic!("serde attribute `{word}` expects a literal, got {other:?}")
                        }
                    };
                    let text = lit.trim_matches('"').to_string();
                    if word == "rename" {
                        out.rename = Some(text);
                    }
                    // Other `key = value` attrs (rename_all, ...) are not
                    // needed by this workspace; ignore them.
                } else if word == "default" {
                    out.default = true;
                }
                // `transparent` is handled by shape (newtype), so a bare
                // word we don't know is simply ignored.
            }
            TokenTree::Punct(_) => {} // commas
            other => panic!("unexpected token in #[serde(...)]: {other:?}"),
        }
    }
}

/// Consume attributes (`# [ ... ]`) at the front of `iter`, collecting
/// serde directives and skipping everything else (doc comments, other
/// derives' helpers).
fn take_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                let group = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    other => panic!("expected [...] after #, got {other:?}"),
                };
                let mut inner = group.stream().into_iter();
                if let Some(TokenTree::Ident(name)) = inner.next() {
                    if name.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            parse_serde_attr(&args, &mut attrs);
                        }
                    }
                }
            }
            _ => return attrs,
        }
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) if present.
fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Parse named-struct fields from the `{...}` body.
fn parse_named_fields(body: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.stream().into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut iter);
        skip_visibility(&mut iter);
        let ident = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{ident}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tree) = iter.peek() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                _ => {}
            }
            iter.next();
        }
        fields.push(Field {
            key: attrs.rename.clone().unwrap_or_else(|| ident.clone()),
            default: attrs.default,
            ident,
        });
    }
    fields
}

/// Parse fieldless enum variants from the `{...}` body.
fn parse_unit_variants(body: proc_macro::Group) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.stream().into_iter().peekable();
    loop {
        let _attrs = take_attrs(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(i)) => variants.push(i.to_string()),
            None => break,
            other => panic!("expected enum variant, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => panic!("only fieldless enums are supported, got {other:?}"),
        }
    }
    variants
}

/// Parse the derive input into one of the supported item shapes.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let _container_attrs = take_attrs(&mut iter);
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    match iter.next() {
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(body),
                }
            } else {
                Item::UnitEnum {
                    name,
                    variants: parse_unit_variants(body),
                }
            }
        }
        Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
            // Tuple struct: only single-field newtypes are supported.
            let field_count = 1 + body
                .stream()
                .into_iter()
                .filter(
                    |t| matches!(t, TokenTree::Punct(p) if p.as_char() == ',' && p.spacing() == proc_macro::Spacing::Alone),
                )
                .count()
                .saturating_sub(
                    // Trailing comma doesn't add a field.
                    usize::from(body.stream().into_iter().last().is_some_and(
                        |t| matches!(t, TokenTree::Punct(ref p) if p.as_char() == ','),
                    )),
                );
            assert!(
                field_count == 1,
                "derive on `{name}`: only single-field tuple structs are supported"
            );
            Item::NewtypeStruct { name }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!(
                "derive on `{name}`: generic types are not supported by the offline serde stand-in"
            )
        }
        other => panic!("unsupported item shape after `{name}`: {other:?}"),
    }
}

/// `#[derive(Serialize)]`: emit an `impl serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{key}\".to_string(), ::serde::Serialize::serialize(&self.{ident})),",
                        key = f.key,
                        ident = f.ident
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{pushes}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`: emit an `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!("return Err(::serde::Error::missing_field(\"{}\"))", f.key)
                    };
                    format!(
                        "{ident}: match value.get(\"{key}\") {{\n\
                             Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
                             None => {missing},\n\
                         }},",
                        ident = f.ident,
                        key = f.key
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         if value.as_object().is_none() {{\n\
                             return Err(::serde::Error::invalid_type(\"object\", value));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::deserialize(value)?))\n\
                 }}\n\
             }}"
        ),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             Some(other) => Err(::serde::Error::custom(\n\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             None => Err(::serde::Error::invalid_type(\"string\", value)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
