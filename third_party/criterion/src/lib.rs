//! Offline stand-in for the `criterion` crate.
//!
//! Supports the authoring surface the bench crate uses —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId::new`, and `Bencher::iter` — with a plain
//! wall-clock measurement loop instead of criterion's statistical
//! pipeline: per sample it runs an adaptively chosen iteration count
//! (targeting a few milliseconds), then reports the minimum, mean, and
//! maximum per-iteration time across samples on stdout.
//!
//! When the `COMPARESETS_BENCH_SMOKE` environment variable is set, every
//! benchmark runs exactly one sample of one iteration (no calibration
//! pass): CI uses this to prove each bench body executes end-to-end
//! without paying measurement-grade runtimes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group_name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark over one prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (printing is already done incrementally).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let smoke = std::env::var_os("COMPARESETS_BENCH_SMOKE").is_some();
        let sample_size = if smoke { 1 } else { self.sample_size };
        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let iters = if smoke {
            1
        } else {
            // Calibration sample: find an iteration count that fills ~2 ms
            // so short benchmarks aren't dominated by timer resolution.
            f(&mut bencher);
            let single = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
            let target = 2e-3;
            if single > 0.0 {
                ((target / single).ceil() as u64).clamp(1, 1_000_000)
            } else {
                1_000_000
            }
        };
        for _ in 0..sample_size {
            bencher.iters = iters;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "  {}/{}: [{} {} {}] ({} samples x {} iters)",
            self.group_name,
            id,
            format_time(min),
            format_time(mean),
            format_time(max),
            per_iter.len(),
            iters,
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Measures the closure handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sq", 12), &12u64, |b, &n| b.iter(|| n * n));
        g.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
