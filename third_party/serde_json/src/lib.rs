//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the `serde` stand-in's `Value` tree. The writer is
//! compact (no whitespace) and emits object keys in insertion order, so
//! derived structs serialise their fields in declaration order — tests
//! rely on that stability. The parser is a plain recursive-descent JSON
//! reader with the usual escapes (including `\uXXXX` with surrogate
//! pairs).

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

/// Error type for JSON (de)serialisation, wrapping the serde error.
#[derive(Debug)]
pub struct Error {
    inner: serde::Error,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            inner: serde::Error::custom(message),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(inner: serde::Error) -> Self {
        Error { inner }
    }
}

/// Serialise a value to a compact JSON string.
///
/// # Errors
/// Never fails for the supported value types; kept fallible for API
/// compatibility with upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serialise a value as compact JSON into a writer.
///
/// # Errors
/// Propagates IO failures from the writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Parse a value from a JSON string.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(json: &str) -> Result<T, Error> {
    let value = parse(json)?;
    Ok(T::deserialize(&value)?)
}

/// Parse a value from a reader.
///
/// # Errors
/// On IO failure, malformed JSON, or a shape mismatch with `T`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&buf)
}

// ---------------------------------------------------------------- writer

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Match serde_json: integral floats get a ".0" suffix.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        // serde_json errors on non-finite; emitting null is the lenient
        // fallback (none of our data contains NaN/inf).
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
///
/// # Errors
/// On malformed JSON or trailing non-whitespace input.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
                .and_then(|_| {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::new(format!("number `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(|u| {
                    if let Ok(i) = i64::try_from(u) {
                        Value::Int(i)
                    } else {
                        Value::UInt(u)
                    }
                })
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_compact_and_ordered() {
        let v = Value::Object(vec![
            ("b".into(), Value::Int(2)),
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Null])),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, r#"{"b":2,"a":[1,null]}"#);
    }

    #[test]
    fn floats_match_serde_json_style() {
        let mut out = String::new();
        write_f64(3.0, &mut out);
        assert_eq!(out, "3.0");
        out.clear();
        write_f64(2.5, &mut out);
        assert_eq!(out, "2.5");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"name":"hi \"you\"","n":-3,"x":1.5,"ok":true,"xs":[1,2],"none":null}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, text);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""aéb😀c""#).unwrap();
        assert_eq!(v, Value::Str("aéb😀c".into()));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse("{not json").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn numbers_classify() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-8").unwrap(), Value::Int(-8));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }
}
