//! Corpus serialisation: results must be identical whether an experiment
//! runs on the in-memory corpus or on a JSON round-tripped copy.

use comparesets::core::{solve_comparesets_plus, InstanceContext, OpinionScheme, SelectParams};
use comparesets::data::io::{from_json, to_json};
use comparesets::data::CategoryPreset;

#[test]
fn selection_is_invariant_under_json_round_trip() {
    let original = CategoryPreset::Toy.config(60, 123).generate();
    let json = to_json(&original).expect("serialise");
    let restored = from_json(&json).expect("deserialise");

    let inst_a = original
        .instances()
        .into_iter()
        .next()
        .unwrap()
        .truncated(4);
    let inst_b = restored
        .instances()
        .into_iter()
        .next()
        .unwrap()
        .truncated(4);
    assert_eq!(inst_a, inst_b);

    let ctx_a = InstanceContext::build(&original, &inst_a, OpinionScheme::Binary);
    let ctx_b = InstanceContext::build(&restored, &inst_b, OpinionScheme::Binary);
    let params = SelectParams::default();
    assert_eq!(
        solve_comparesets_plus(&ctx_a, &params),
        solve_comparesets_plus(&ctx_b, &params)
    );
}

#[test]
fn json_is_stable_across_serialisations() {
    let d = CategoryPreset::Clothing.config(30, 5).generate();
    assert_eq!(to_json(&d).unwrap(), to_json(&d).unwrap());
}

#[test]
fn corrupted_json_is_rejected_with_validation_error() {
    let d = CategoryPreset::Toy.config(10, 9).generate();
    let json = to_json(&d).unwrap();
    // Flip a product reference out of range.
    let broken = json.replacen("\"product\":0", "\"product\":99999", 1);
    assert!(from_json(&broken).is_err());
}
