//! Cross-crate integration: generate → select → narrow → score, end to
//! end, with determinism checks.

use comparesets::core::{
    comparesets_plus_objective, solve, solve_comparesets, solve_comparesets_plus, Algorithm,
    InstanceContext, OpinionScheme, SelectParams,
};
use comparesets::data::CategoryPreset;
use comparesets::graph::{solve_exact, solve_greedy, ExactOptions, SimilarityGraph, SolveStatus};
use comparesets::text::rouge_l;

fn setup() -> (comparesets::data::Dataset, InstanceContext) {
    let dataset = CategoryPreset::Cellphone.config(100, 77).generate();
    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 5)
        .expect("instance with enough items")
        .truncated(5);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    (dataset, ctx)
}

#[test]
fn full_pipeline_runs_and_is_deterministic() {
    let (dataset, ctx) = setup();
    let params = SelectParams::default();

    let sels1 = solve_comparesets_plus(&ctx, &params);
    let sels2 = solve_comparesets_plus(&ctx, &params);
    assert_eq!(sels1, sels2, "selection must be deterministic");

    let graph = SimilarityGraph::from_selections(&ctx, &sels1, params.lambda, params.mu);
    let exact = solve_exact(&graph, 0, 3, &ExactOptions::default());
    assert_eq!(exact.status, SolveStatus::Optimal);
    assert!(exact.vertices.contains(&0));

    // The selected reviews map back to real dataset reviews of the right
    // products.
    for (i, sel) in sels1.iter().enumerate() {
        for rid in sel.review_ids(ctx.item(i)) {
            assert_eq!(dataset.review(rid).product, ctx.item(i).product);
        }
    }
}

#[test]
fn synchronized_objective_ordering_holds() {
    let (_, ctx) = setup();
    let params = SelectParams {
        m: 3,
        lambda: 1.0,
        mu: 1.0,
    };
    let base = solve_comparesets(&ctx, &params);
    let plus = solve_comparesets_plus(&ctx, &params);
    let ob = comparesets_plus_objective(&ctx, &base, params.lambda, params.mu);
    let op = comparesets_plus_objective(&ctx, &plus, params.lambda, params.mu);
    assert!(
        op <= ob + 1e-9,
        "CompaReSetS+ {op} must not exceed CompaReSetS {ob} on Eq. 5"
    );
}

#[test]
fn all_algorithms_produce_valid_selections() {
    let (_, ctx) = setup();
    for m in [1, 3, 5] {
        let params = SelectParams {
            m,
            lambda: 1.0,
            mu: 0.1,
        };
        for alg in Algorithm::ALL {
            let sels = solve(&ctx, alg, &params, 3);
            assert_eq!(sels.len(), ctx.num_items());
            for (i, s) in sels.iter().enumerate() {
                assert!(!s.is_empty(), "{alg:?} m={m} item {i} empty");
                assert!(s.len() <= m, "{alg:?} m={m} item {i} over budget");
                assert!(s.indices.iter().all(|&r| r < ctx.item(i).num_reviews()));
            }
        }
    }
}

#[test]
fn selected_reviews_share_vocabulary_across_items() {
    // The synchronized selection should produce nonzero cross-item ROUGE
    // on template-generated text.
    let (dataset, ctx) = setup();
    let sels = solve_comparesets_plus(&ctx, &SelectParams::default());
    let mut total = 0.0;
    let mut count = 0;
    for j in 1..ctx.num_items() {
        for &a in &sels[0].indices {
            for &b in &sels[j].indices {
                let ta = &dataset.review(ctx.item(0).review_ids[a]).text;
                let tb = &dataset.review(ctx.item(j).review_ids[b]).text;
                total += rouge_l(ta, tb).f1;
                count += 1;
            }
        }
    }
    assert!(count > 0);
    assert!(
        total / count as f64 > 0.02,
        "mean ROUGE-L {}",
        total / count as f64
    );
}

#[test]
fn greedy_core_list_matches_exact_on_small_instances() {
    let (_, ctx) = setup();
    let params = SelectParams::default();
    let sels = solve_comparesets_plus(&ctx, &params);
    let graph = SimilarityGraph::from_selections(&ctx, &sels, params.lambda, params.mu);
    let exact = solve_exact(&graph, 0, 3, &ExactOptions::default());
    let greedy = solve_greedy(&graph, 0, 3);
    let gw = graph.subgraph_weight(&greedy);
    // Greedy is near-optimal on these small graphs (Table 5's finding).
    assert!(
        gw >= exact.weight * 0.9,
        "greedy {gw} vs exact {}",
        exact.weight
    );
}
