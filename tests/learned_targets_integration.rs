//! Integration: EFM-learned targets flowing into the selection pipeline
//! (the §4.2.3 future-work path, end to end).

use comparesets::core::{
    item_objective, solve_comparesets, InstanceContext, Item, OpinionScheme, SelectParams,
};
use comparesets::data::CategoryPreset;
use comparesets::efm::{EfmConfig, EfmModel};

#[test]
fn efm_targets_drive_selection_end_to_end() {
    let dataset = CategoryPreset::Toy.config(80, 3).generate();
    let model = EfmModel::train(
        &dataset,
        EfmConfig {
            epochs: 30,
            ..EfmConfig::default()
        },
    );
    assert!(model.train_rmse() < 1.0);

    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 3)
        .expect("multi-item instance")
        .truncated(3);
    let empirical = InstanceContext::build(&dataset, &instance, OpinionScheme::UnaryScale);
    let items: Vec<Item> = (0..empirical.num_items())
        .map(|i| empirical.item(i).clone())
        .collect();
    let taus: Vec<Vec<f64>> = items
        .iter()
        .map(|item| model.learned_tau(item.product.0 as usize))
        .collect();
    let learned = InstanceContext::with_targets(
        dataset.num_aspects(),
        items,
        OpinionScheme::UnaryScale,
        taus.clone(),
        empirical.gamma().to_vec(),
    );

    // Injected targets are visible verbatim.
    for (i, tau) in taus.iter().enumerate() {
        assert_eq!(learned.tau(i), tau.as_slice());
    }

    let params = SelectParams {
        m: 3,
        lambda: 1.0,
        mu: 0.0,
    };
    let sels = solve_comparesets(&learned, &params);
    for (i, s) in sels.iter().enumerate() {
        assert!(!s.is_empty());
        assert!(s.len() <= 3);
        // The achieved cost is no worse than selecting nothing.
        let empty = comparesets::core::Selection::default();
        assert!(
            item_objective(&learned, i, s, 1.0) <= item_objective(&learned, i, &empty, 1.0) + 1e-9
        );
    }
}

#[test]
#[should_panic(expected = "tau dimension")]
fn mismatched_target_dimension_is_rejected() {
    let dataset = CategoryPreset::Toy.config(30, 1).generate();
    let instance = dataset.instances().into_iter().next().unwrap().truncated(1);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    let items: Vec<Item> = (0..ctx.num_items()).map(|i| ctx.item(i).clone()).collect();
    let n = items.len();
    let _ = InstanceContext::with_targets(
        dataset.num_aspects(),
        items,
        OpinionScheme::Binary,
        vec![vec![0.0; 3]; n], // wrong dimension (binary needs 2z)
        vec![0.0; dataset.num_aspects()],
    );
}
