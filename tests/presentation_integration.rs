//! Integration: the consumer-facing presentation layer (comparison table
//! + extractive summaries) over a fully solved instance.

use comparesets::core::{
    solve_comparesets_plus, ComparisonTable, InstanceContext, OpinionScheme, SelectParams,
};
use comparesets::data::CategoryPreset;
use comparesets::graph::{solve_exact, ExactOptions, SimilarityGraph};
use comparesets::text::{summarize, SummaryConfig};

#[test]
fn full_pipeline_to_comparison_table_and_summaries() {
    let dataset = CategoryPreset::Cellphone.config(120, 4).generate();
    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 5)
        .expect("large instance")
        .truncated(6);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    let params = SelectParams::default();
    let selections = solve_comparesets_plus(&ctx, &params);
    let graph = SimilarityGraph::from_selections(&ctx, &selections, params.lambda, params.mu);
    let core = solve_exact(&graph, 0, 3, &ExactOptions::default()).vertices;

    // Comparison table over the core list.
    let table = ComparisonTable::build(&ctx, &selections, Some(&core));
    assert_eq!(table.products.len(), 3);
    assert!(
        !table.rows.is_empty(),
        "selected reviews must mention aspects"
    );
    // Row coverage is within bounds and sorted descending.
    let mut prev = usize::MAX;
    for row in &table.rows {
        assert!(row.coverage >= 1 && row.coverage <= 3);
        assert!(row.coverage <= prev);
        prev = row.coverage;
        assert_eq!(row.cells.len(), 3);
        // Star scores, when present, are within the scale.
        for cell in &row.cells {
            if let Some(s) = cell.stars() {
                assert!((1.0..=5.0).contains(&s));
            }
        }
    }
    // Rendering resolves aspect names without panicking.
    let text = table.render(&dataset.aspects);
    assert!(text.contains("Aspect"));

    // Summaries of each core item's selected reviews.
    for &i in &core {
        let item = ctx.item(i);
        let texts: Vec<&str> = selections[i]
            .indices
            .iter()
            .map(|&r| dataset.review(item.review_ids[r]).text.as_str())
            .collect();
        let summary = summarize(&texts, SummaryConfig::default());
        assert!(
            !summary.is_empty(),
            "non-empty reviews summarise to something"
        );
        assert!(summary.len() <= 2);
        // Extractive: every summary sentence appears in some source text.
        for s in &summary {
            assert!(
                texts.iter().any(|t| t.contains(s.as_str())),
                "summary sentence {s:?} not found in sources"
            );
        }
    }
}

#[test]
fn streaming_session_stays_consistent_over_many_arrivals() {
    use comparesets::core::{IncrementalSession, ReviewFeature};
    use comparesets::data::{Polarity, ReviewId};

    let dataset = CategoryPreset::Toy.config(80, 9).generate();
    let instance = dataset
        .instances()
        .into_iter()
        .find(|i| i.len() >= 3)
        .unwrap()
        .truncated(3);
    let ctx = InstanceContext::build(&dataset, &instance, OpinionScheme::Binary);
    let mut session = IncrementalSession::new(ctx, SelectParams::default());

    let z = session.context().space().num_aspects();
    let mut last_objective = f64::INFINITY;
    for step in 0..12u32 {
        let item = (step as usize) % session.context().num_items();
        let aspect = (step as usize * 7) % z;
        let polarity = if step % 3 == 0 {
            Polarity::Negative
        } else {
            Polarity::Positive
        };
        session.add_review(
            item,
            ReviewId(800_000 + step),
            ReviewFeature::new(vec![(aspect, polarity)]),
        );
        // Invariants hold at every step.
        for (i, sel) in session.selections().iter().enumerate() {
            assert!(!sel.is_empty());
            assert!(sel.len() <= 3);
            assert!(sel
                .indices
                .iter()
                .all(|&r| r < session.context().item(i).num_reviews()));
        }
        let obj = session.objective();
        assert!(obj.is_finite() && obj >= 0.0);
        last_objective = obj;
    }
    // A refresh at the end can only help.
    session.refresh();
    assert!(session.objective() <= last_objective + 1e-9);
}
