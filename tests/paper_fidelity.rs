//! Fidelity tests against the paper's worked examples, expressed through
//! the public facade API.

use comparesets::core::{
    solve_comparesets, solve_crs, InstanceContext, Item, OpinionScheme, SelectParams,
};
use comparesets::data::{Polarity, ProductId, ReviewId};
use comparesets::graph::{solve_exact, solve_hks, ExactOptions, SimilarityGraph};
use comparesets::linalg::vector::sq_distance;

/// ℛ₁ of Working Example 1 / Figure 2a: aspects {battery, lens, quality,
/// price, shuttle}; battery appears 6× (2+, 4−), lens 4× (2+, 2−),
/// quality 4× (2+, 2−).
fn working_example_item() -> Item {
    use Polarity::{Negative, Positive};
    let reviews = vec![
        vec![(0, Positive), (1, Positive)],
        vec![(0, Negative), (1, Negative)],
        vec![(0, Negative), (2, Positive)],
        vec![(2, Negative)],
        vec![(0, Positive), (1, Positive), (2, Positive)],
        vec![(0, Negative), (1, Negative)],
        vec![(0, Negative), (2, Negative)],
    ];
    Item::from_mentions(
        ProductId(0),
        reviews
            .into_iter()
            .enumerate()
            .map(|(i, ms)| (ReviewId(i as u32), ms))
            .collect(),
    )
}

#[test]
fn working_example_1_vectors() {
    let ctx = InstanceContext::from_items(5, vec![working_example_item()], OpinionScheme::Binary);
    // τ₁ = (2/6, 4/6, 2/6, 2/6, 2/6, 2/6, 0, 0, 0, 0).
    let expect_tau = [
        2.0 / 6.0,
        4.0 / 6.0,
        2.0 / 6.0,
        2.0 / 6.0,
        2.0 / 6.0,
        2.0 / 6.0,
        0.0,
        0.0,
        0.0,
        0.0,
    ];
    assert!(sq_distance(ctx.tau(0), &expect_tau) < 1e-20);
    // Γ = (6/6, 4/6, 4/6, 0, 0).
    let expect_gamma = [1.0, 4.0 / 6.0, 4.0 / 6.0, 0.0, 0.0];
    assert!(sq_distance(ctx.gamma(), &expect_gamma) < 1e-20);
}

#[test]
fn working_example_2_integer_regression_attains_zero_objective() {
    let ctx = InstanceContext::from_items(5, vec![working_example_item()], OpinionScheme::Binary);
    for m in [3, 4, 5] {
        let params = SelectParams {
            m,
            lambda: 1.0,
            mu: 0.0,
        };
        let sels = solve_comparesets(&ctx, &params);
        let cost = comparesets::core::item_objective(&ctx, 0, &sels[0], 1.0);
        assert!(cost < 1e-12, "m={m}: cost {cost}");
    }
}

#[test]
fn crs_special_case_matches_opinion_distribution() {
    // CRS = CompaReSetS with a single item and λ = 0 (§2.2).
    let ctx = InstanceContext::from_items(5, vec![working_example_item()], OpinionScheme::Binary);
    let crs = solve_crs(&ctx, 3);
    let pi = ctx.space().pi(ctx.item(0), &crs[0].indices);
    assert!(sq_distance(ctx.tau(0), &pi) < 1e-12);
}

#[test]
fn figure_4_targethks_excludes_globally_heavier_clique() {
    let n = 6;
    let mut w = vec![0.0; n * n];
    let mut set = |i: usize, j: usize, v: f64| {
        w[i * n + j] = v;
        w[j * n + i] = v;
    };
    set(1, 4, 9.0);
    set(1, 5, 8.5);
    set(4, 5, 9.0);
    set(0, 3, 9.0);
    set(0, 5, 8.4);
    set(3, 5, 8.0);
    set(0, 1, 1.0);
    set(0, 2, 2.0);
    set(0, 4, 1.5);
    set(1, 2, 2.0);
    set(1, 3, 1.0);
    set(2, 3, 2.5);
    set(2, 4, 1.0);
    set(2, 5, 0.5);
    set(3, 4, 1.0);
    let g = SimilarityGraph::from_weights(n, w);

    let target = solve_exact(&g, 0, 3, &ExactOptions::default());
    assert_eq!(target.vertices, vec![0, 3, 5]);
    assert!((target.weight - 25.4).abs() < 1e-9);

    let hks = solve_hks(&g, 3, &ExactOptions::default());
    assert_eq!(hks.vertices, vec![1, 4, 5]);
    assert!((hks.weight - 26.5).abs() < 1e-9);
    assert!(!hks.vertices.contains(&0), "HkS drops the target item");
}
